"""Offline trace diagnostics + perf-trend regression detection.

Covers the analyzer (`repro diagnose`) on real recorded traces — the
attribution/audit/frontier/timeline sections and the exact counter
reconciliation — plus `check_trend` on synthetic trajectories and the
CLI exit-code contract for both commands (missing files, unknown
schemas, regressions must all exit nonzero so CI can gate on them).
"""

import json

import pytest

from repro.analysis.diagnose import (
    KNOWN_BENCH_SCHEMAS,
    check_trend,
    diagnose,
    load_trace,
    render_report,
)
from repro.cli import main


def _record_trace(tmp_path, extra_args=()):
    path = tmp_path / "trace.jsonl"
    code = main(
        ["map", "--circuit", "qft:4", "--arch", "lnn-4",
         "--latency", "qft", "--search-initial",
         "--search-trace", str(path), *extra_args]
    )
    assert code == 0
    return path


def _trend_report(entries):
    return {"schema": KNOWN_BENCH_SCHEMAS[0], "trajectory": entries}


def _entry(nodes, seconds=0.5, mode="full", pruning="on",
           suite="qft5_lnn_solve"):
    return {
        "commit": "abc1234",
        "mode": mode,
        "pruning": pruning,
        "suites": {
            suite: {"nodes_expanded": nodes, "wall_seconds": seconds},
        },
    }


class TestDiagnose:
    def test_full_trace_report_sections(self, tmp_path):
        path = _record_trace(tmp_path)
        records = load_trace(str(path))
        report = diagnose(records)
        assert report["complete"] and report["consistent"]
        # The recorded stream carries non-trace record types too
        # (metrics snapshots etc. when requested); load_trace filters.
        assert all(r["type"] == "trace" for r in records)
        attribution = report["attribution"]
        assert "symmetry_quotient" in attribution
        assert attribution["symmetry_quotient"]["stat"] == "symmetry_pruned"
        assert report["frontier"]["recorded_expansions"] == \
            report["stats"]["nodes_expanded"]
        timeline = report["incumbent_timeline"]
        assert timeline and timeline[0]["source"] == "seed"
        rendered = render_report(report)
        assert "counter reconciliation: OK" in rendered
        assert "pruning attribution" in rendered
        assert "admissible" in rendered

    def test_partial_ring_trace_skips_reconciliation(self, tmp_path):
        path = _record_trace(
            tmp_path,
            ["--search-trace-mode", "ring", "--search-trace-ring", "10"],
        )
        report = diagnose(load_trace(str(path)))
        assert not report["complete"]
        assert report["consistent"] is None
        # Summary totals stay exact even though records were evicted.
        assert report["stats"]["nodes_expanded"] > 10
        assert "skipped (partial trace" in render_report(report)

    def test_mismatch_flagged_on_complete_trace(self, tmp_path):
        path = _record_trace(tmp_path)
        records = load_trace(str(path))
        # Corrupt the authoritative totals: claim one more expansion.
        for record in records:
            if record.get("ev") == "summary":
                record["stats"]["nodes_expanded"] += 1
        report = diagnose(records)
        assert report["complete"] and not report["consistent"]
        assert "nodes_expanded" in report["mismatches"]
        assert "MISMATCH" in render_report(report)


class TestDiagnoseCli:
    def test_diagnose_cli_roundtrip(self, tmp_path, capsys):
        path = _record_trace(tmp_path)
        capsys.readouterr()
        json_out = tmp_path / "report.json"
        code = main(["diagnose", str(path), "--json-out", str(json_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "counter reconciliation: OK" in out
        report = json.loads(json_out.read_text())
        assert report["consistent"]

    def test_diagnose_missing_file_exits_1(self, tmp_path, capsys):
        code = main(["diagnose", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_diagnose_no_trace_records_exits_1(self, tmp_path, capsys):
        path = tmp_path / "only_metrics.jsonl"
        path.write_text('{"type": "metrics", "label": "final"}\n')
        code = main(["diagnose", str(path)])
        assert code == 1
        assert "no trace records" in capsys.readouterr().err


class TestCheckTrend:
    def test_single_entry_nothing_to_compare(self):
        ok, messages = check_trend(_trend_report([_entry(100)]))
        assert ok
        assert "nothing to compare" in messages[0]

    def test_different_config_not_compared(self):
        ok, messages = check_trend(_trend_report([
            _entry(100, pruning="off"), _entry(500, pruning="on"),
        ]))
        assert ok
        assert "no prior entries" in messages[0]

    def test_node_regression_detected(self):
        ok, messages = check_trend(_trend_report([
            _entry(100), _entry(120),
        ]))
        assert not ok
        assert any("nodes_expanded regressed" in m for m in messages)

    def test_within_tolerance_passes(self):
        ok, messages = check_trend(_trend_report([
            _entry(100), _entry(104),
        ]))
        assert ok, messages

    def test_compares_against_best_prior(self):
        # 104 regresses vs the best prior (80), despite beating 100.
        ok, _ = check_trend(_trend_report([
            _entry(100), _entry(80), _entry(104),
        ]))
        assert not ok

    def test_time_regression_detected_above_floor(self):
        ok, messages = check_trend(_trend_report([
            _entry(100, seconds=0.5), _entry(100, seconds=2.0),
        ]))
        assert not ok
        assert any("wall_seconds regressed" in m for m in messages)

    def test_sub_floor_timings_never_gate(self):
        ok, _ = check_trend(_trend_report([
            _entry(100, seconds=0.01), _entry(100, seconds=0.09),
        ]))
        assert ok  # 9x slower but noise-dominated territory

    def test_new_suite_passes(self):
        newest = _entry(999, suite="brand_new_suite")
        ok, messages = check_trend(_trend_report([_entry(100), newest]))
        assert ok
        assert any("new suite" in m for m in messages)


class TestBenchTrendCli:
    def test_missing_file_friendly_error(self, tmp_path, capsys):
        code = main(["bench-trend", "--json",
                     str(tmp_path / "missing.json")])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "bench_search_perf.py" in err

    def test_invalid_json_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        code = main(["bench-trend", "--json", str(path)])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_schema_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(
            {"schema": "repro.bench_search/1", "trajectory": [_entry(5)]}
        ))
        code = main(["bench-trend", "--json", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown schema 'repro.bench_search/1'" in err
        assert KNOWN_BENCH_SCHEMAS[0] in err

    def test_check_passes_on_stable_trajectory(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_trend_report(
            [_entry(100), _entry(100)]
        )))
        code = main(["bench-trend", "--json", str(path), "--check"])
        assert code == 0
        assert "trend check: ok" in capsys.readouterr().out

    def test_check_exits_1_on_regression(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_trend_report(
            [_entry(100), _entry(200)]
        )))
        code = main(["bench-trend", "--json", str(path), "--check"])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "nodes_expanded regressed" in captured.out

    def test_check_threshold_flags(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_trend_report(
            [_entry(100), _entry(200)]
        )))
        code = main(["bench-trend", "--json", str(path), "--check",
                     "--max-node-ratio", "2.5"])
        assert code == 0

    def test_real_repo_trajectory_parses(self, capsys):
        code = main(["bench-trend", "--json",
                     "benchmarks/results/BENCH_search.json", "--check"])
        assert code == 0
