"""Smoke tests keeping the example scripts in sync with the library."""

import runpy
import sys

import pytest


def run_example(monkeypatch, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    return runpy.run_path(f"examples/{name}.py", run_name="__main__")


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example(monkeypatch, "quickstart")
        out = capsys.readouterr().out
        assert "depth" in out
        assert "OPENQASM 2.0;" in out

    def test_initial_mapping_search(self, monkeypatch, capsys):
        run_example(monkeypatch, "initial_mapping_search")
        out = capsys.readouterr().out
        assert "mode 2" in out
        assert "cycles saved" in out

    @pytest.mark.slow
    def test_qft_patterns(self, monkeypatch, capsys):
        run_example(monkeypatch, "qft_patterns")
        out = capsys.readouterr().out
        assert "All checkpoints reproduced." in out

    def test_large_circuit_mapping_scaled(self, monkeypatch, capsys):
        run_example(
            monkeypatch, "large_circuit_mapping", argv=["qft_10", "200"]
        )
        out = capsys.readouterr().out
        assert "Speedup vs SABRE" in out
        assert "TOQM (practical)" in out
