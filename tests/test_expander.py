"""Unit tests for the node expander (coupling/dependency/redundancy)."""

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.expander import (
    ExpansionConfig,
    OPTIMAL_EXPANSION,
    enumerate_action_sets,
    expand,
    frontier_gates,
    startable_actions,
)
from repro.core.problem import MappingProblem

from .test_heuristic import make_node


def simple_problem():
    circuit = Circuit(3).cx(0, 1).cx(1, 2)
    return MappingProblem(circuit, lnn(3), uniform_latency(1, 3))


class TestFrontier:
    def test_initial_frontier(self):
        problem = simple_problem()
        assert frontier_gates(problem, make_node(problem)) == [0]

    def test_frontier_advances_with_pointers(self):
        problem = simple_problem()
        node = make_node(problem, ptr=[1, 1, 0], started=1)
        assert frontier_gates(problem, node) == [1]

    def test_two_qubit_gate_needs_both_pointers(self):
        circuit = Circuit(3).h(0).cx(0, 1)
        problem = MappingProblem(circuit, lnn(3))
        node = make_node(problem)
        # cx's pointer on q1 rests on it but q0 still owes the h.
        assert frontier_gates(problem, node) == [0]


class TestStartableActions:
    def test_coupling_blocks_distant_gate(self):
        circuit = Circuit(3).cx(0, 2)
        problem = MappingProblem(circuit, lnn(3))
        gates, swaps = startable_actions(problem, make_node(problem))
        assert gates == []
        assert ("s", 0, 1) in swaps and ("s", 1, 2) in swaps

    def test_adjacent_gate_startable(self):
        problem = simple_problem()
        gates, _ = startable_actions(problem, make_node(problem))
        assert gates == [("g", 0)]

    def test_busy_qubits_excluded(self):
        problem = simple_problem()
        from repro.core.state import K_GATE

        node = make_node(
            problem, time=0, ptr=[1, 1, 0], started=1,
            inflight=((1, K_GATE, 0, 0),),
        )
        gates, swaps = startable_actions(problem, node)
        assert gates == []  # cx(1,2) waits on busy Q1
        assert swaps == [("s", 0, 1)] or ("s", 0, 1) not in swaps
        # Q1, Q0 are busy (gate 0 runs on them) so only edge (1,2)... both
        # endpoints of (1,2): Q1 busy -> no swaps at all.
        assert all(a[1] not in (0, 1) and a[2] not in (0, 1) for a in swaps)

    def test_cyclic_swap_pruned(self):
        circuit = Circuit(3).cx(0, 2)
        problem = MappingProblem(circuit, lnn(3))
        node = make_node(problem)
        node.last_swaps = frozenset({(0, 1)})
        _, swaps = startable_actions(problem, node)
        assert ("s", 0, 1) not in swaps
        assert ("s", 1, 2) in swaps

    def test_dummy_dummy_swap_skipped(self):
        # 2 logical qubits on lnn-4: the (2,3) edge holds two unused
        # physical qubits; swapping them achieves nothing.
        circuit = Circuit(2).cx(0, 1)
        problem = MappingProblem(circuit, lnn(4))
        _, swaps = startable_actions(problem, make_node(problem))
        assert ("s", 2, 3) not in swaps

    def test_frontier_swaps_only(self):
        circuit = Circuit(5).cx(0, 4)
        problem = MappingProblem(circuit, lnn(5))
        config = ExpansionConfig(frontier_swaps_only=True)
        _, swaps = startable_actions(problem, make_node(problem), config)
        # Only edges touching Q0 or Q4 (the blocked pair's positions).
        assert set(swaps) == {("s", 0, 1), ("s", 3, 4)}

    def test_protect_satisfied_frontier(self):
        from repro.core.state import K_GATE

        circuit = Circuit(4).h(0).cx(0, 1).cx(2, 3)
        problem = MappingProblem(circuit, lnn(4))
        # h(q0) in flight; cx(0,1) is dependency-ready, coupling-satisfied,
        # but Q0 busy.  Swaps touching Q1 would break it.
        node = make_node(
            problem, ptr=[1, 0, 0, 0], started=1,
            inflight=((1, K_GATE, 0, 0),),
        )
        config = ExpansionConfig(protect_satisfied_frontier=True)
        _, swaps = startable_actions(problem, node, config)
        assert ("s", 1, 2) not in swaps

    def test_max_candidate_swaps_ranks_by_improvement(self):
        circuit = Circuit(5).cx(0, 4)
        problem = MappingProblem(circuit, lnn(5))
        config = ExpansionConfig(max_candidate_swaps=2)
        _, swaps = startable_actions(problem, make_node(problem), config)
        assert len(swaps) == 2
        # Both survivors shorten the q0..q4 distance.
        assert set(swaps) <= {("s", 0, 1), ("s", 3, 4)}


class TestEnumeration:
    def test_subsets_are_qubit_disjoint(self):
        circuit = Circuit(4).cx(0, 2).cx(1, 3)
        problem = MappingProblem(circuit, lnn(4))
        node = make_node(problem)
        gates, swaps = startable_actions(problem, node)
        for subset in enumerate_action_sets(problem, node, gates, swaps):
            used = set()
            for action in subset:
                qubits = (
                    set(action[1:])
                    if action[0] == "s"
                    else {node.pos[q] for q in problem.gate_qubits[action[1]]}
                )
                assert not (used & qubits)
                used |= qubits

    def test_empty_set_included(self):
        problem = simple_problem()
        node = make_node(problem)
        gates, swaps = startable_actions(problem, node)
        subsets = enumerate_action_sets(problem, node, gates, swaps)
        assert () in subsets

    def test_greedy_mode_forces_ready_gates(self):
        problem = simple_problem()
        node = make_node(problem)
        gates, swaps = startable_actions(problem, node)
        config = ExpansionConfig(greedy_gates=True)
        subsets = enumerate_action_sets(problem, node, gates, swaps, config)
        assert all(("g", 0) in subset for subset in subsets)

    def test_max_swaps_per_step(self):
        circuit = Circuit(6).cx(0, 5)
        problem = MappingProblem(circuit, lnn(6))
        node = make_node(problem)
        gates, swaps = startable_actions(problem, node)
        config = ExpansionConfig(max_swaps_per_step=1)
        subsets = enumerate_action_sets(problem, node, gates, swaps, config)
        assert max(len(s) for s in subsets) <= 1


class TestExpansion:
    def test_children_advance_time_to_next_event(self):
        problem = simple_problem()
        children = expand(problem, make_node(problem))
        assert children
        for child in children:
            assert child.time > 0

    def test_empty_wait_forbidden_when_idle(self):
        problem = simple_problem()
        children = expand(problem, make_node(problem))
        assert all(child.actions for child in children)

    def test_gate_start_bumps_pointers(self):
        problem = simple_problem()
        children = expand(problem, make_node(problem))
        with_gate = [c for c in children if ("g", 0) in c.actions]
        assert with_gate
        for child in with_gate:
            assert child.ptr[0] == 1 and child.ptr[1] == 1
            assert child.started == 1

    def test_swap_completion_updates_mapping(self):
        circuit = Circuit(2).cx(0, 1)
        problem = MappingProblem(circuit, lnn(2), uniform_latency(1, 3))
        node = make_node(problem)
        children = expand(problem, node)
        swapped = [c for c in children if c.actions == (("s", 0, 1),)]
        assert swapped
        child = swapped[0]
        assert child.time == 3
        assert child.pos == (1, 0)
        assert (0, 1) in child.last_swaps

    def test_redundant_child_pruned(self):
        # Parent waits (only a swap was startable); the child trying the
        # same swap alone later is pruned.
        problem = simple_problem()
        node = make_node(problem)
        children = expand(problem, node)
        gate_only = [c for c in children if c.actions == (("g", 0),)][0]
        grandchildren = expand(problem, gate_only)
        # ("s",0,1) was startable at the parent but conflicts with g0's
        # qubits, so it is NOT in prev_startable; ("s",1,2)... Q1 also used
        # by g0.  Check prev_startable bookkeeping directly instead:
        assert gate_only.prev_startable == frozenset()
        assert grandchildren  # expansion continues

    def test_deadend_fallback_regenerates_children(self):
        problem = simple_problem()
        node = make_node(problem)
        # Claim every startable action was available at the parent: the
        # redundancy rule would prune everything; the fallback must kick in.
        gates, swaps = startable_actions(problem, node)
        node.prev_startable = frozenset(gates) | frozenset(swaps)
        children = expand(problem, node)
        assert children
