"""Tests for the decoherence/fidelity model (the paper's §1 motivation)."""

import pytest

from repro.analysis import NoiseModel, estimate_fidelity, fidelity_gain
from repro.arch import lnn
from repro.baselines import TrivialMapper
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper


def schedules():
    circuit = qft_skeleton(5)
    latency = uniform_latency(1, 3)
    optimal = OptimalMapper(lnn(5), latency).map(
        circuit, initial_mapping=list(range(5))
    )
    trivial = TrivialMapper(lnn(5), latency).map(circuit)
    return optimal, trivial


class TestEstimate:
    def test_in_unit_interval(self):
        optimal, trivial = schedules()
        for result in (optimal, trivial):
            assert 0 < estimate_fidelity(result) <= 1

    def test_time_optimal_schedule_more_reliable(self):
        """The paper's claim: lower depth ⇒ less decoherence ⇒ higher
        fidelity (here the optimal schedule also inserts fewer SWAPs)."""
        optimal, trivial = schedules()
        assert optimal.depth < trivial.depth
        assert estimate_fidelity(optimal) > estimate_fidelity(trivial)
        assert fidelity_gain(optimal, trivial) > 0

    def test_empty_schedule_is_perfect(self):
        result = OptimalMapper(lnn(2)).map(Circuit(2), initial_mapping=[0, 1])
        assert estimate_fidelity(result) == pytest.approx(1.0)

    def test_shorter_coherence_punishes_depth_more(self):
        optimal, trivial = schedules()
        harsh = NoiseModel(coherence_cycles=100)
        mild = NoiseModel(coherence_cycles=100000)
        assert fidelity_gain(optimal, trivial, harsh) > fidelity_gain(
            optimal, trivial, mild
        )

    def test_swap_costs_three_cnots(self):
        # One inserted swap should cost ~(1-e2)^3 in gate factor.
        circuit = Circuit(3).cx(0, 2)
        latency = uniform_latency(1, 3)
        result = OptimalMapper(lnn(3), latency).map(
            circuit, initial_mapping=[0, 1, 2]
        )
        assert result.num_inserted_swaps == 1
        noise = NoiseModel(coherence_cycles=10 ** 9)  # isolate gate factor
        fidelity = estimate_fidelity(result, noise)
        expected = (1 - noise.two_qubit_error) ** 3 * (
            1 - noise.two_qubit_error
        )
        assert fidelity == pytest.approx(expected, rel=1e-6)

    def test_gain_requires_same_circuit(self):
        optimal, _ = schedules()
        other = OptimalMapper(lnn(2)).map(
            Circuit(2).cx(0, 1), initial_mapping=[0, 1]
        )
        with pytest.raises(ValueError):
            fidelity_gain(optimal, other)
