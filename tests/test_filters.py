"""Unit tests for the equivalence/dominance state filter (Fig. 5)."""

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.filters import StateFilter
from repro.core.problem import MappingProblem
from repro.core.state import K_GATE, K_SWAP

from .test_heuristic import make_node


def problem():
    circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
    return MappingProblem(circuit, lnn(3), uniform_latency(1, 3))


class TestEquivalence:
    def test_identical_state_dropped(self):
        prob = problem()
        filt = StateFilter(prob)
        a = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        b = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(a)
        assert not filt.admit(b)
        assert filt.equivalent_dropped == 1

    def test_different_mapping_not_grouped(self):
        prob = problem()
        filt = StateFilter(prob)
        a = make_node(prob, time=2)
        b = make_node(prob, time=2, mapping=(1, 0, 2))
        assert filt.admit(a)
        assert filt.admit(b)

    def test_different_progress_not_grouped(self):
        prob = problem()
        filt = StateFilter(prob)
        a = make_node(prob, time=2)
        b = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(a)
        assert filt.admit(b)

    def test_inflight_swap_groups_by_effective_mapping(self):
        # A node whose swap is still in flight hashes with the swap
        # applied (Fig. 5 caption: "assuming all active swaps take
        # effect").
        prob = problem()
        filt = StateFilter(prob)
        swapped = make_node(prob, time=3, mapping=(1, 0, 2))
        pending = make_node(prob, time=1, inflight=((3, K_SWAP, 0, 1),))
        assert swapped.filter_key() == pending.filter_key()
        assert filt.admit(pending)
        # `swapped` is at a later time with no compensating advantage…
        # actually pending finishes its swap at t=3 = swapped.time, and
        # both then have identical prospects: pending dominates nothing
        # (its qubits stay busy until 3, same as swapped's time) — the
        # dominance check must compare them, not crash.
        filt.admit(swapped)


class TestDominance:
    def test_slower_same_state_dropped(self):
        prob = problem()
        filt = StateFilter(prob)
        fast = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        slow = make_node(prob, time=5, ptr=[1, 1, 0], started=1)
        assert filt.admit(fast)
        assert not filt.admit(slow)
        assert filt.dominated_dropped == 1

    def test_faster_newcomer_kills_stored(self):
        prob = problem()
        filt = StateFilter(prob)
        slow = make_node(prob, time=5, ptr=[1, 1, 0], started=1)
        fast = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(slow)
        assert filt.admit(fast)
        assert slow.killed
        assert filt.killed == 1

    def test_busy_qubit_blocks_dominance(self):
        prob = problem()
        filt = StateFilter(prob)
        # Earlier in time but its gate finishes later than the other
        # node's: neither dominates.
        busy = make_node(
            prob, time=1, ptr=[1, 1, 0], started=1,
            inflight=((9, K_GATE, 0, 0),),
        )
        free = make_node(prob, time=3, ptr=[1, 1, 0], started=1)
        assert filt.admit(busy)
        assert filt.admit(free)
        assert not busy.killed

    def test_dominance_disabled(self):
        prob = problem()
        filt = StateFilter(prob, dominance=False)
        fast = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        slow = make_node(prob, time=5, ptr=[1, 1, 0], started=1)
        assert filt.admit(fast)
        assert filt.admit(slow)  # only exact equivalence filtered

    def test_live_only_ignores_dropped_nodes(self):
        prob = problem()
        filt = StateFilter(prob, live_only=True)
        fast = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(fast)
        fast.dropped = True
        slow = make_node(prob, time=5, ptr=[1, 1, 0], started=1)
        assert filt.admit(slow)

    def test_num_states_counts_keys(self):
        prob = problem()
        filt = StateFilter(prob)
        filt.admit(make_node(prob, time=0))
        filt.admit(make_node(prob, time=1, mapping=(1, 0, 2)))
        assert filt.num_states == 2

    def test_compact_drops_dead_entries(self):
        prob = problem()
        filt = StateFilter(prob, live_only=True)
        node = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(node)
        assert filt.num_states == 1
        node.dropped = True
        filt.compact()
        assert filt.num_states == 0
        # The same state is admittable again afterwards.
        again = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(again)

    def test_compact_noop_without_live_only(self):
        prob = problem()
        filt = StateFilter(prob)  # optimal mode keeps its closed list
        node = make_node(prob, time=2, ptr=[1, 1, 0], started=1)
        assert filt.admit(node)
        node.dropped = True
        filt.compact()
        assert filt.num_states == 1


class TestInsertionScanCompaction:
    """Group lists shed dead entries during admit scans (not just on
    explicit compact() calls), so killed-heavy groups stay bounded."""

    def test_killed_entries_compacted_on_next_scan(self):
        prob = problem()
        filt = StateFilter(prob)
        # Same group, strictly improving times: each admission kills the
        # previous entry's node (dominance), and the next scan must
        # write the dead ones back out instead of accumulating them.
        for time in (9, 7, 5, 3):
            node = make_node(prob, time=time, ptr=[1, 1, 0], started=1)
            assert filt.admit(node)
        bucket, = filt._table.values()
        assert len(bucket) == 1  # only the live winner remains
        assert bucket[0].node.time == 3

    def test_group_size_histogram_observed(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        prob = problem()
        filt = StateFilter(prob, metrics=metrics)
        filt.admit(make_node(prob, time=2, ptr=[1, 1, 0], started=1))
        filt.admit(make_node(prob, time=2))  # different group
        hist = metrics.histogram("filter.group_size")
        assert hist.count == 2
        assert hist.max >= 1

    def test_release_frees_all_groups(self):
        prob = problem()
        filt = StateFilter(prob)
        assert filt.admit(make_node(prob, time=2, ptr=[1, 1, 0], started=1))
        assert filt.num_states == 1
        filt.release()
        assert filt.num_states == 0
        # Counters survive release (budget aborts report them).
        assert filt.equivalent_dropped == 0
