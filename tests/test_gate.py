"""Unit tests for the gate primitives."""

import pytest

from repro.circuit.gate import Gate, single, swap, two


class TestGateConstruction:
    def test_single_qubit_gate(self):
        gate = single("h", 2)
        assert gate.name == "h"
        assert gate.qubits == (2,)
        assert gate.num_qubits == 1
        assert not gate.is_two_qubit
        assert not gate.is_swap

    def test_two_qubit_gate(self):
        gate = two("cx", 0, 3)
        assert gate.qubits == (0, 3)
        assert gate.is_two_qubit
        assert not gate.is_swap

    def test_swap_constructor(self):
        gate = swap(1, 2)
        assert gate.is_swap
        assert gate.is_two_qubit

    def test_params_preserved(self):
        gate = single("rz", 0, 1.5)
        assert gate.params == (1.5,)

    def test_rejects_empty_qubits(self):
        with pytest.raises(ValueError):
            Gate("h", ())

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_rejects_three_qubit_gates(self):
        with pytest.raises(ValueError):
            Gate("ccx", (0, 1, 2))


class TestGateBehavior:
    def test_gates_are_hashable_and_equal_by_value(self):
        assert two("cx", 0, 1) == two("cx", 0, 1)
        assert hash(two("cx", 0, 1)) == hash(two("cx", 0, 1))
        assert two("cx", 0, 1) != two("cx", 1, 0)

    def test_on_remaps_qubits(self):
        gate = two("cx", 0, 1).on(4, 5)
        assert gate.qubits == (4, 5)
        assert gate.name == "cx"

    def test_str_forms(self):
        assert str(two("cx", 0, 1)) == "cx q0, q1"
        assert "rz(0.5)" in str(single("rz", 3, 0.5))
