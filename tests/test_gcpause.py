"""Regression tests for the re-entrant cyclic-GC pause.

The original implementation snapshotted ``gc.isenabled()`` per context,
which re-enabled the collector too early when two pauses exited out of
order (a generator holding one search's context while a second search
runs).  The depth-counter version only touches the collector on the
outermost entry/exit.
"""

import gc

import pytest

from repro.core.gcpause import pause_gc


@pytest.fixture(autouse=True)
def _gc_enabled():
    """Run every test from a known collector state and restore it."""
    was = gc.isenabled()
    gc.enable()
    yield
    if was:
        gc.enable()
    else:
        gc.disable()


def test_basic_pause_and_restore():
    assert gc.isenabled()
    with pause_gc():
        assert not gc.isenabled()
    assert gc.isenabled()


def test_nested_lifo():
    with pause_gc():
        assert not gc.isenabled()
        with pause_gc():
            assert not gc.isenabled()
        # Inner exit must not resume collection mid-outer-pause.
        assert not gc.isenabled()
    assert gc.isenabled()


def test_non_lifo_exit_keeps_collector_paused():
    # Simulate interleaved searches: A enters, B enters, A exits first.
    a = pause_gc()
    b = pause_gc()
    a.__enter__()
    b.__enter__()
    assert not gc.isenabled()
    a.__exit__(None, None, None)
    # B is still inside its pause; the collector must stay off.
    assert not gc.isenabled()
    b.__exit__(None, None, None)
    assert gc.isenabled()


def test_exception_unwind_restores():
    with pytest.raises(RuntimeError):
        with pause_gc():
            assert not gc.isenabled()
            raise RuntimeError("search budget abort")
    assert gc.isenabled()


def test_exception_through_nested_pauses():
    with pytest.raises(RuntimeError):
        with pause_gc():
            with pause_gc():
                raise RuntimeError("inner abort")
    assert gc.isenabled()


def test_externally_disabled_collector_left_alone():
    gc.disable()
    with pause_gc():
        assert not gc.isenabled()
    # The caller managed GC itself; pause_gc must not re-enable it.
    assert not gc.isenabled()
    gc.enable()


def test_generator_held_pause():
    # A generator that pauses across yields: closing it after another
    # pause has already come and gone must leave the collector enabled.
    def searchlike():
        with pause_gc():
            yield

    g = searchlike()
    next(g)
    with pause_gc():
        assert not gc.isenabled()
    assert not gc.isenabled()  # generator's pause still active
    g.close()
    assert gc.isenabled()
