"""Unit tests for the workload generators."""

import pytest

from repro.arch import grid, rigetti_aspen4
from repro.circuit.generators import (
    ghz_circuit,
    linear_entangler,
    qft_full,
    qft_skeleton,
    queko_circuit,
    random_circuit,
)


class TestQftSkeleton:
    @pytest.mark.parametrize("n", [2, 3, 6, 10])
    def test_gate_count_is_n_choose_2(self, n):
        circuit = qft_skeleton(n)
        assert len(circuit) == n * (n - 1) // 2

    def test_every_pair_exactly_once(self):
        circuit = qft_skeleton(6)
        pairs = {tuple(sorted(g.qubits)) for g in circuit}
        assert len(pairs) == 15

    def test_layered_depth_is_2n_minus_3(self):
        # Fig. 10: the parallel-layer form runs in 2n-3 layers on an
        # all-to-all architecture.
        for n in (4, 6, 8):
            assert qft_skeleton(n, layered=True).depth() == 2 * n - 3

    def test_sequential_form_same_gate_set(self):
        layered = qft_skeleton(6, layered=True)
        seq = qft_skeleton(6, layered=False)
        pairs = lambda c: sorted(tuple(sorted(g.qubits)) for g in c)
        assert pairs(layered) == pairs(seq)

    def test_sequential_form_has_same_dag_depth(self):
        # Both orderings induce the same per-qubit chains (each qubit sees
        # its partners in ascending subscript-sum order), so the ASAP depth
        # is 2n-3 either way; only the textual order differs.
        assert qft_skeleton(6, layered=False).depth() == qft_skeleton(6).depth()

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            qft_skeleton(1)


class TestQftFull:
    def test_structure(self):
        circuit = qft_full(4)
        counts = circuit.count_ops()
        assert counts["h"] == 4
        assert counts["cu1"] == 6


class TestSmallGenerators:
    def test_ghz(self):
        circuit = ghz_circuit(5)
        assert len(circuit) == 5
        assert circuit.depth() == 5

    def test_linear_entangler_depth(self):
        circuit = linear_entangler(6, rounds=2)
        assert circuit.depth() == 4


class TestRandomCircuit:
    def test_deterministic_per_seed(self):
        a = random_circuit(5, 50, seed=7)
        b = random_circuit(5, 50, seed=7)
        assert a == b
        assert a != random_circuit(5, 50, seed=8)

    def test_gate_count(self):
        assert len(random_circuit(5, 123, seed=0)) == 123

    def test_two_qubit_fraction_extremes(self):
        all_2q = random_circuit(4, 40, two_qubit_fraction=1.0, seed=1)
        assert all(g.is_two_qubit for g in all_2q)
        no_2q = random_circuit(4, 40, two_qubit_fraction=0.0, seed=1)
        assert not any(g.is_two_qubit for g in no_2q)

    def test_locality_reuses_pairs(self):
        local = random_circuit(10, 300, two_qubit_fraction=1.0, seed=2, locality=0.95)
        spread = random_circuit(10, 300, two_qubit_fraction=1.0, seed=2, locality=0.0)
        assert len(local.interaction_graph()) < len(spread.interaction_graph())


class TestQueko:
    @pytest.mark.parametrize("depth", [1, 5, 10, 15])
    def test_known_optimal_depth(self, depth):
        circuit = queko_circuit(rigetti_aspen4(), depth=depth, seed=3)
        assert circuit.depth() == depth

    def test_unscrambled_runs_on_hardware_directly(self):
        arch = grid(2, 3)
        circuit = queko_circuit(arch, depth=6, seed=1, scramble=False)
        for gate in circuit.two_qubit_gates():
            assert arch.are_adjacent(*gate.qubits)

    def test_scrambling_breaks_direct_execution(self):
        arch = rigetti_aspen4()
        circuit = queko_circuit(arch, depth=8, seed=5, scramble=True)
        violations = sum(
            0 if arch.are_adjacent(*g.qubits) else 1
            for g in circuit.two_qubit_gates()
        )
        assert violations > 0

    def test_deterministic(self):
        arch = rigetti_aspen4()
        assert queko_circuit(arch, 5, seed=0) == queko_circuit(arch, 5, seed=0)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            queko_circuit(rigetti_aspen4(), depth=0)
