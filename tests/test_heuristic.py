"""Unit tests for the admissible heuristic h(v), including the paper's
worked example (Fig. 8) and the meet-in-the-middle fallacy (Fig. 9)."""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.heuristic import heuristic_cost
from repro.core.problem import MappingProblem
from repro.core.state import K_GATE, K_SWAP, SearchNode


def make_node(problem, time=0, mapping=None, ptr=None, inflight=(), started=0):
    """Build a SearchNode directly for white-box heuristic tests."""
    if mapping is None:
        mapping = tuple(range(problem.num_logical))
    inv = [-1] * problem.num_physical
    for logical, physical in enumerate(mapping):
        inv[physical] = logical
    return SearchNode(
        time=time,
        pos=tuple(mapping),
        inv=tuple(inv),
        ptr=tuple(ptr if ptr is not None else [0] * problem.num_logical),
        started=started,
        inflight=tuple(inflight),
        last_swaps=frozenset(),
        prev_startable=frozenset(),
        parent=None,
        actions=(),
    )


class TestBasics:
    def test_empty_circuit_zero(self):
        problem = MappingProblem(Circuit(2), lnn(2))
        assert heuristic_cost(problem, make_node(problem)) == 0

    def test_single_adjacent_gate(self):
        problem = MappingProblem(Circuit(2).cx(0, 1), lnn(2))
        assert heuristic_cost(problem, make_node(problem)) == 1

    def test_serial_chain_equals_critical_path(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        problem = MappingProblem(circuit, lnn(3))
        assert heuristic_cost(problem, make_node(problem)) == 3

    def test_distance_forces_swap_lower_bound(self):
        # cx(q0, q2) on lnn-3 with unit swap: at least 1 swap + 1 gate.
        problem = MappingProblem(
            Circuit(3).cx(0, 2), lnn(3), uniform_latency(1, 3)
        )
        assert heuristic_cost(problem, make_node(problem)) == 4

    def test_inflight_gate_contributes_remaining_time(self):
        circuit = Circuit(2).cx(0, 1)
        problem = MappingProblem(circuit, lnn(2), uniform_latency(2, 3))
        node = make_node(
            problem,
            time=1,
            ptr=[1, 1],
            started=1,
            inflight=((2, K_GATE, 0, 0),),  # finishes at cycle 2
        )
        assert heuristic_cost(problem, node) == 1

    def test_inflight_swap_effect_applied_to_mapping(self):
        # cx(q0, q2) on lnn-3; a swap Q1<->Q2 is in flight, so q2 will be
        # adjacent to q0 once it lands: h = remaining-swap + gate.
        circuit = Circuit(3).cx(0, 2)
        problem = MappingProblem(circuit, lnn(3), uniform_latency(1, 3))
        node = make_node(
            problem, time=2, inflight=((3, K_SWAP, 1, 2),)
        )
        assert heuristic_cost(problem, node) == 2

    def test_uninformed_mode_ignores_distance(self):
        problem = MappingProblem(
            Circuit(3).cx(0, 2), lnn(3), uniform_latency(1, 3)
        )
        node = make_node(problem)
        assert heuristic_cost(problem, node, swap_aware=False) == 1

    def test_window_truncation_is_lower_bound(self):
        circuit = Circuit(3)
        for _ in range(20):
            circuit.cx(0, 1)
        problem = MappingProblem(circuit, lnn(3))
        node = make_node(problem)
        full = heuristic_cost(problem, node)
        windowed = heuristic_cost(problem, node, window=3)
        assert windowed <= full
        assert windowed >= 3


class TestFig8Example:
    """The cost-calculation walkthrough of Fig. 8 (search node F).

    Circuit (1-indexed in the paper, 0-indexed here): g1, g2 single-qubit
    on q1; g3, g4 single-qubit on q2; g5 = GT(q2, q5); g6 = GT(q1, q2).
    Gates take 1 cycle, SWAPs 3.  At node F (cycle 1) g1 has completed and
    SWAP(Q4, Q5) is in flight with 2 cycles left.  The paper derives
    t_min(g5) = 5, t_min(g6) = 6, so h = 7 and f = 1 + 7 = 8.
    """

    def build(self):
        circuit = Circuit(5)
        circuit.h(0)          # g1 on q1
        circuit.h(0)          # g2 on q1
        circuit.h(1)          # g3 on q2
        circuit.h(1)          # g4 on q2
        circuit.gt(1, 4)      # g5 = GT(q2, q5)
        circuit.gt(0, 1)      # g6 = GT(q1, q2)
        return MappingProblem(circuit, lnn(5), uniform_latency(1, 3))

    def test_node_f_cost_is_8(self):
        problem = self.build()
        node_f = make_node(
            problem,
            time=1,
            ptr=[1, 0, 0, 0, 0],      # g1 scheduled
            started=1,
            inflight=((3, K_SWAP, 3, 4),),  # SWAP(Q4, Q5), 2 cycles left
        )
        h = heuristic_cost(problem, node_f)
        assert h == 7
        assert node_f.time + h == 8


class TestFig9Fallacy:
    """Uneven SWAP splits can beat meeting in the middle (Fig. 9).

    Two qubits at distance 5 (4 SWAPs needed, 2 cycles each); the first
    operand's chain holds 3 one-cycle gates, the second none.  Meeting in
    the middle (2+2) delays the gate by 4 extra cycles; the optimal split
    (1 on the busy qubit, 3 on the idle one) delays it by only 3.
    """

    def build(self):
        circuit = Circuit(6)
        circuit.h(0).h(0).h(0)   # 3-gate chain on the first operand
        circuit.gt(0, 5)         # the distant gate
        return MappingProblem(circuit, lnn(6), uniform_latency(1, 2))

    def test_heuristic_uses_best_split(self):
        problem = self.build()
        h = heuristic_cost(problem, make_node(problem))
        # u = 3 (the chain), best split r=1/s=3: delay 3; gate takes 1.
        assert h == 3 + 3 + 1

    def test_middle_split_would_be_worse(self):
        # The even split r=s=2 yields delay max(4-0, 4-3) = 4 > 3,
        # so if the heuristic naively met in the middle it would return 8.
        problem = self.build()
        assert heuristic_cost(problem, make_node(problem)) < 8


class TestAdmissibility:
    """h at the root never exceeds the true optimal depth (Lemma A.1)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_root_h_below_optimal_depth(self, seed):
        from repro.circuit.generators import random_circuit
        from repro.core import OptimalMapper

        circuit = random_circuit(4, 8, two_qubit_fraction=0.7, seed=seed)
        arch = lnn(4)
        latency = uniform_latency(1, 3)
        problem = MappingProblem(circuit, arch, latency)
        h_root = heuristic_cost(problem, make_node(problem))
        optimal = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        assert h_root <= optimal.depth
