"""Unit tests for the admissible heuristic h(v), including the paper's
worked example (Fig. 8) and the meet-in-the-middle fallacy (Fig. 9)."""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.heuristic import heuristic_cost
from repro.core.problem import MappingProblem
from repro.core.state import K_GATE, K_SWAP, SearchNode


def make_node(problem, time=0, mapping=None, ptr=None, inflight=(), started=0):
    """Build a SearchNode directly for white-box heuristic tests."""
    if mapping is None:
        mapping = tuple(range(problem.num_logical))
    inv = [-1] * problem.num_physical
    for logical, physical in enumerate(mapping):
        inv[physical] = logical
    return SearchNode(
        time=time,
        pos=tuple(mapping),
        inv=tuple(inv),
        ptr=tuple(ptr if ptr is not None else [0] * problem.num_logical),
        started=started,
        inflight=tuple(inflight),
        last_swaps=frozenset(),
        prev_startable=frozenset(),
        parent=None,
        actions=(),
    )


class TestBasics:
    def test_empty_circuit_zero(self):
        problem = MappingProblem(Circuit(2), lnn(2))
        assert heuristic_cost(problem, make_node(problem)) == 0

    def test_single_adjacent_gate(self):
        problem = MappingProblem(Circuit(2).cx(0, 1), lnn(2))
        assert heuristic_cost(problem, make_node(problem)) == 1

    def test_serial_chain_equals_critical_path(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        problem = MappingProblem(circuit, lnn(3))
        assert heuristic_cost(problem, make_node(problem)) == 3

    def test_distance_forces_swap_lower_bound(self):
        # cx(q0, q2) on lnn-3 with unit swap: at least 1 swap + 1 gate.
        problem = MappingProblem(
            Circuit(3).cx(0, 2), lnn(3), uniform_latency(1, 3)
        )
        assert heuristic_cost(problem, make_node(problem)) == 4

    def test_inflight_gate_contributes_remaining_time(self):
        circuit = Circuit(2).cx(0, 1)
        problem = MappingProblem(circuit, lnn(2), uniform_latency(2, 3))
        node = make_node(
            problem,
            time=1,
            ptr=[1, 1],
            started=1,
            inflight=((2, K_GATE, 0, 0),),  # finishes at cycle 2
        )
        assert heuristic_cost(problem, node) == 1

    def test_inflight_swap_effect_applied_to_mapping(self):
        # cx(q0, q2) on lnn-3; a swap Q1<->Q2 is in flight, so q2 will be
        # adjacent to q0 once it lands: h = remaining-swap + gate.
        circuit = Circuit(3).cx(0, 2)
        problem = MappingProblem(circuit, lnn(3), uniform_latency(1, 3))
        node = make_node(
            problem, time=2, inflight=((3, K_SWAP, 1, 2),)
        )
        assert heuristic_cost(problem, node) == 2

    def test_uninformed_mode_ignores_distance(self):
        problem = MappingProblem(
            Circuit(3).cx(0, 2), lnn(3), uniform_latency(1, 3)
        )
        node = make_node(problem)
        assert heuristic_cost(problem, node, swap_aware=False) == 1

    def test_window_truncation_is_lower_bound(self):
        circuit = Circuit(3)
        for _ in range(20):
            circuit.cx(0, 1)
        problem = MappingProblem(circuit, lnn(3))
        node = make_node(problem)
        full = heuristic_cost(problem, node)
        windowed = heuristic_cost(problem, node, window=3)
        assert windowed <= full
        assert windowed >= 3


class TestFig8Example:
    """The cost-calculation walkthrough of Fig. 8 (search node F).

    Circuit (1-indexed in the paper, 0-indexed here): g1, g2 single-qubit
    on q1; g3, g4 single-qubit on q2; g5 = GT(q2, q5); g6 = GT(q1, q2).
    Gates take 1 cycle, SWAPs 3.  At node F (cycle 1) g1 has completed and
    SWAP(Q4, Q5) is in flight with 2 cycles left.  The paper derives
    t_min(g5) = 5, t_min(g6) = 6, so h = 7 and f = 1 + 7 = 8.
    """

    def build(self):
        circuit = Circuit(5)
        circuit.h(0)          # g1 on q1
        circuit.h(0)          # g2 on q1
        circuit.h(1)          # g3 on q2
        circuit.h(1)          # g4 on q2
        circuit.gt(1, 4)      # g5 = GT(q2, q5)
        circuit.gt(0, 1)      # g6 = GT(q1, q2)
        return MappingProblem(circuit, lnn(5), uniform_latency(1, 3))

    def test_node_f_cost_is_8(self):
        problem = self.build()
        node_f = make_node(
            problem,
            time=1,
            ptr=[1, 0, 0, 0, 0],      # g1 scheduled
            started=1,
            inflight=((3, K_SWAP, 3, 4),),  # SWAP(Q4, Q5), 2 cycles left
        )
        h = heuristic_cost(problem, node_f)
        assert h == 7
        assert node_f.time + h == 8


class TestFig9Fallacy:
    """Uneven SWAP splits can beat meeting in the middle (Fig. 9).

    Two qubits at distance 5 (4 SWAPs needed, 2 cycles each); the first
    operand's chain holds 3 one-cycle gates, the second none.  Meeting in
    the middle (2+2) delays the gate by 4 extra cycles; the optimal split
    (1 on the busy qubit, 3 on the idle one) delays it by only 3.
    """

    def build(self):
        circuit = Circuit(6)
        circuit.h(0).h(0).h(0)   # 3-gate chain on the first operand
        circuit.gt(0, 5)         # the distant gate
        return MappingProblem(circuit, lnn(6), uniform_latency(1, 2))

    def test_heuristic_uses_best_split(self):
        problem = self.build()
        h = heuristic_cost(problem, make_node(problem))
        # u = 3 (the chain), best split r=1/s=3: delay 3; gate takes 1.
        assert h == 3 + 3 + 1

    def test_middle_split_would_be_worse(self):
        # The even split r=s=2 yields delay max(4-0, 4-3) = 4 > 3,
        # so if the heuristic naively met in the middle it would return 8.
        problem = self.build()
        assert heuristic_cost(problem, make_node(problem)) < 8


class TestAdmissibility:
    """h at the root never exceeds the true optimal depth (Lemma A.1)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_root_h_below_optimal_depth(self, seed):
        from repro.circuit.generators import random_circuit
        from repro.core import OptimalMapper

        circuit = random_circuit(4, 8, two_qubit_fraction=0.7, seed=seed)
        arch = lnn(4)
        latency = uniform_latency(1, 3)
        problem = MappingProblem(circuit, arch, latency)
        h_root = heuristic_cost(problem, make_node(problem))
        optimal = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        assert h_root <= optimal.depth


class TestOptimizedMatchesReference:
    """The overhauled heuristic is observably identical to the original.

    ``_heuristic_cost_reference`` is the pre-overhaul formulation kept
    verbatim as the semantics oracle.  Rather than fabricating node
    states (easy to get inconsistent), these tests intercept every
    heuristic evaluation of real searches — which exercises inflight
    profiles, partial pointers and mode-2 prefix nodes the way the
    search actually produces them — and compare both implementations.
    """

    def _check_search(self, monkeypatch, circuit, arch, latency,
                      swap_aware=True, max_nodes=1500):
        from repro.core import OptimalMapper, SearchBudgetExceeded
        from repro.core.heuristic import _heuristic_cost_reference
        from repro.core.kernels import api as api_mod

        checked = [0]

        def checking(problem, node, window=None, swap_aware=True,
                     metrics=None, memo=None):
            got = heuristic_cost(
                problem, node, window=window, swap_aware=swap_aware
            )
            want = _heuristic_cost_reference(
                problem, node, window=window, swap_aware=swap_aware
            )
            assert got == want, (
                f"optimized h={got} != reference h={want} at "
                f"time={node.time} ptr={node.ptr} inflight={node.inflight}"
            )
            checked[0] += 1
            return got

        # The search scores nodes through the kernel backend seam; pin
        # the pure backend so every memo-miss evaluation runs the python
        # heuristic under test (the compiled/vector backends have their
        # own parity suite in test_kernels.py).
        monkeypatch.setattr(api_mod, "heuristic_cost", checking)
        mapper = OptimalMapper(
            arch, latency, informed=swap_aware, max_nodes=max_nodes,
            kernel="pure",
        )
        try:
            mapper.map(
                circuit, initial_mapping=list(range(arch.num_qubits))
            )
        except SearchBudgetExceeded:
            pass
        assert checked[0] > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_on_lnn(self, seed, monkeypatch):
        from repro.circuit.generators import random_circuit

        circuit = random_circuit(5, 10, two_qubit_fraction=0.8, seed=seed)
        self._check_search(
            monkeypatch, circuit, lnn(5), uniform_latency(1, 3)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_on_grid(self, seed, monkeypatch):
        from repro.arch import grid
        from repro.circuit.generators import random_circuit

        circuit = random_circuit(6, 9, two_qubit_fraction=0.7, seed=seed)
        self._check_search(
            monkeypatch, circuit, grid(2, 3), uniform_latency(1, 2)
        )

    def test_qft_uninformed_mode(self, monkeypatch):
        from repro.circuit.generators import qft_skeleton

        self._check_search(
            monkeypatch, qft_skeleton(4), lnn(4), uniform_latency(1, 3),
            swap_aware=False,
        )

    @pytest.mark.parametrize("window", [1, 2, 3])
    def test_windowed_practical_search(self, window, monkeypatch):
        """The practical mapper's truncated heuristic matches too."""
        from repro.circuit.generators import qft_skeleton
        from repro.core import HeuristicMapper
        from repro.core import heuristic_mapper as hm_mod
        from repro.core.heuristic import _heuristic_cost_reference

        checked = [0]

        def checking(problem, node, window=None, swap_aware=True,
                     metrics=None, memo=None):
            got = heuristic_cost(
                problem, node, window=window, swap_aware=swap_aware
            )
            want = _heuristic_cost_reference(
                problem, node, window=window, swap_aware=swap_aware
            )
            assert got == want
            checked[0] += 1
            return got

        monkeypatch.setattr(hm_mod, "heuristic_cost", checking)
        mapper = HeuristicMapper(
            lnn(5), uniform_latency(1, 3), window=window
        )
        mapper.map(qft_skeleton(5), initial_mapping=list(range(5)))
        assert checked[0] > 0


class TestMemoizationTransparency:
    """The memo may only change speed, never the search trajectory."""

    CASES = [
        ("qft5", 5, (1, 3)),
        ("qft4", 4, (1, 3)),
        ("rand5", 5, (1, 1)),
    ]

    @pytest.mark.parametrize("name,n,lat", CASES)
    def test_exact_search_identical_counts(self, name, n, lat):
        from repro.circuit.generators import qft_skeleton, random_circuit
        from repro.core import OptimalMapper

        if name.startswith("qft"):
            circuit = qft_skeleton(n)
        else:
            circuit = random_circuit(n, 10, two_qubit_fraction=0.8, seed=12)
        runs = {}
        for memoize in (True, False):
            mapper = OptimalMapper(
                lnn(n), uniform_latency(*lat), memoize=memoize
            )
            result = mapper.map(circuit, initial_mapping=list(range(n)))
            runs[memoize] = (
                result.depth,
                result.stats["nodes_expanded"],
                result.stats["nodes_generated"],
            )
        assert runs[True] == runs[False]

    def test_practical_search_identical_counts(self):
        from repro.circuit.generators import qft_skeleton
        from repro.core import HeuristicMapper

        runs = {}
        for memoize in (True, False):
            mapper = HeuristicMapper(
                lnn(6), uniform_latency(1, 3), memoize=memoize
            )
            result = mapper.map(
                qft_skeleton(6), initial_mapping=list(range(6))
            )
            runs[memoize] = (
                result.depth, result.stats["nodes_expanded"]
            )
        assert runs[True] == runs[False]

    def test_memo_counters_populate(self):
        from repro.circuit.generators import qft_skeleton
        from repro.core import OptimalMapper

        result = OptimalMapper(lnn(5), uniform_latency(1, 3)).map(
            qft_skeleton(5), initial_mapping=list(range(5))
        )
        assert result.stats["memo_hits"] > 0
        assert result.stats["memo_misses"] > 0


class TestAblationPinsAgainstReference:
    """Depth and nodes_expanded are bit-identical to a search driven by
    the kept pre-overhaul heuristic (the PR's semantics-preservation
    acceptance gate, run over the ablation benchmark circuits)."""

    def _counts(self, circuit, arch, latency, monkeypatch=None,
                use_reference=False):
        from repro.core import OptimalMapper
        from repro.core.heuristic import _heuristic_cost_reference
        from repro.core.kernels import api as api_mod

        if use_reference:
            def reference_only(problem, node, window=None, swap_aware=True,
                               metrics=None, memo=None):
                return _heuristic_cost_reference(
                    problem, node, window=window, swap_aware=swap_aware
                )

            # Drive the whole search with the reference heuristic via
            # the kernel-backend seam (pure backend evaluates through
            # ``api_mod.heuristic_cost`` node by node).
            monkeypatch.setattr(api_mod, "heuristic_cost", reference_only)
        mapper = OptimalMapper(
            arch, latency, kernel="pure" if use_reference else None
        )
        result = mapper.map(
            circuit, initial_mapping=list(range(arch.num_qubits))
        )
        return result.depth, result.stats["nodes_expanded"]

    def _ablation_set(self):
        from repro.circuit.generators import qft_skeleton, random_circuit

        return [
            ("qft5-u11", qft_skeleton(5), lnn(5), uniform_latency(1, 1)),
            ("qft5-u13", qft_skeleton(5), lnn(5), uniform_latency(1, 3)),
            (
                "rand5-s12",
                random_circuit(5, 10, two_qubit_fraction=0.8, seed=12),
                lnn(5),
                uniform_latency(1, 3),
            ),
            ("qft4-u13", qft_skeleton(4), lnn(4), uniform_latency(1, 3)),
        ]

    def test_counts_match_reference_driven_search(self, monkeypatch):
        for name, circuit, arch, latency in self._ablation_set():
            want = self._counts(
                circuit, arch, latency,
                monkeypatch=monkeypatch, use_reference=True,
            )
            monkeypatch.undo()
            got = self._counts(circuit, arch, latency)
            assert got == want, f"{name}: {got} != reference-driven {want}"


class TestWindowTruncationMetric:
    def test_truncation_counted_and_deterministic(self):
        from repro.obs import MetricsRegistry

        # Five disjoint pending gates, window=1: the cap is 4*window=4,
        # so one truncation event must be counted and the kept prefix is
        # the program-order head (deterministic, not set-order).
        circuit = Circuit(10)
        for a in range(0, 10, 2):
            circuit.cx(a, a + 1)
        problem = MappingProblem(
            circuit, lnn(10), uniform_latency(1, 3)
        )
        metrics = MetricsRegistry()
        node = make_node(problem)
        h = heuristic_cost(problem, node, window=1, metrics=metrics)
        assert metrics.counter("heuristic.window_truncated").value == 1
        # Still a valid lower bound relative to the untruncated value.
        assert 0 < h <= heuristic_cost(problem, node)
