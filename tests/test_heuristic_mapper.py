"""Tests for the practical (approximate) mapper of Section 6.2."""

import pytest

from repro.arch import grid, ibm_tokyo, lnn
from repro.circuit import Circuit, IBM_LATENCY, uniform_latency
from repro.circuit.generators import ghz_circuit, qft_skeleton, random_circuit
from repro.core import HeuristicMapper, OptimalMapper
from repro.verify import validate_result


class TestValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_valid(self, seed, tokyo):
        circuit = random_circuit(8, 60, two_qubit_fraction=0.6, seed=seed)
        result = HeuristicMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)

    def test_full_width_circuit(self, tokyo):
        circuit = random_circuit(20, 80, two_qubit_fraction=0.5, seed=2)
        result = HeuristicMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)

    def test_explicit_initial_mapping_respected(self):
        circuit = ghz_circuit(4)
        result = HeuristicMapper(lnn(4), uniform_latency()).map(
            circuit, initial_mapping=[3, 2, 1, 0]
        )
        validate_result(result)
        assert result.initial_mapping == (3, 2, 1, 0)

    def test_single_qubit_only_circuit(self):
        circuit = Circuit(3).h(0).h(1).t(2).x(0)
        result = HeuristicMapper(lnn(3), uniform_latency()).map(circuit)
        validate_result(result)
        assert result.depth == 2

    def test_unused_qubits_get_homes(self, tokyo):
        circuit = Circuit(6).cx(0, 1)
        result = HeuristicMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)
        assert len(set(result.initial_mapping)) == 6


class TestQuality:
    def test_matches_optimal_when_no_swaps_needed(self):
        circuit = ghz_circuit(5)
        result = HeuristicMapper(lnn(5), uniform_latency()).map(
            circuit, initial_mapping=[0, 1, 2, 3, 4]
        )
        assert result.depth == circuit.depth()
        assert result.num_inserted_swaps == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_never_beats_optimal(self, seed):
        circuit = random_circuit(4, 8, two_qubit_fraction=0.8, seed=seed)
        latency = uniform_latency(1, 3)
        arch = lnn(4)
        optimal = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        heuristic = HeuristicMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(heuristic)
        assert heuristic.depth >= optimal.depth

    def test_on_the_fly_placement_minimizes_first_distance(self, tokyo):
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        result = HeuristicMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)
        m = result.initial_mapping
        assert tokyo.are_adjacent(m[0], m[1])
        assert tokyo.are_adjacent(m[2], m[3])

    def test_beats_trivial_router_on_structured_workload(self, tokyo):
        from repro.baselines import TrivialMapper

        circuit = random_circuit(12, 300, two_qubit_fraction=0.6, seed=11)
        ours = HeuristicMapper(tokyo, IBM_LATENCY).map(circuit)
        trivial = TrivialMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(ours)
        assert ours.depth < trivial.depth


class TestKnobs:
    def test_paper_parameters_accepted(self, tokyo):
        mapper = HeuristicMapper(
            tokyo, IBM_LATENCY, top_k=10, queue_cap=2000, queue_trim=1000
        )
        circuit = random_circuit(8, 40, two_qubit_fraction=0.5, seed=1)
        validate_result(mapper.map(circuit))

    def test_rejects_trim_not_below_cap(self, tokyo):
        with pytest.raises(ValueError):
            HeuristicMapper(tokyo, queue_cap=100, queue_trim=100)

    def test_rejects_bad_initial_mapping(self, tokyo):
        with pytest.raises(ValueError):
            HeuristicMapper(tokyo).map(
                ghz_circuit(3), initial_mapping=[0, 0, 1]
            )

    def test_stats_populated(self, tokyo):
        circuit = random_circuit(6, 30, two_qubit_fraction=0.5, seed=4)
        result = HeuristicMapper(tokyo, IBM_LATENCY).map(circuit)
        assert result.stats["nodes_expanded"] > 0
        assert "seconds" in result.stats
        assert not result.optimal
