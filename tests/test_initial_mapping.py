"""Tests for the Section 5.3 initial-mapping machinery (mode 2)."""

import pytest

from repro.arch import CouplingGraph, grid, ibm_qx2, lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import ghz_circuit, random_circuit
from repro.core import OptimalMapper, SearchBudgetExceeded
from repro.verify import validate_result


class TestPrefixSearch:
    def test_prefix_swaps_not_counted(self):
        """A circuit solvable swap-free under some mapping costs only its
        ideal depth, no matter how far that mapping is from identity."""
        circuit = Circuit(4).cx(0, 3).cx(3, 0).cx(0, 3)
        latency = uniform_latency(1, 3)
        result = OptimalMapper(
            lnn(4), latency, search_initial_mapping=True,
            try_swap_free_fast_path=False,  # force the prefix machinery
        ).map(circuit)
        validate_result(result)
        assert result.depth == circuit.depth(latency)
        assert result.num_inserted_swaps == 0
        # The chosen mapping must place q0 and q3 adjacently.
        assert abs(result.initial_mapping[0] - result.initial_mapping[3]) == 1

    def test_prefix_and_fast_path_agree(self):
        circuit = random_circuit(4, 8, two_qubit_fraction=0.8, seed=21)
        latency = uniform_latency(1, 3)
        with_fast = OptimalMapper(
            ibm_qx2(), latency, search_initial_mapping=True
        ).map(circuit)
        without_fast = OptimalMapper(
            ibm_qx2(), latency, search_initial_mapping=True,
            try_swap_free_fast_path=False,
        ).map(circuit)
        assert with_fast.depth == without_fast.depth

    def test_unused_physical_qubits_exploited(self):
        """With more physical than logical qubits, mode 2 may spread the
        logicals out over the larger graph."""
        circuit = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        latency = uniform_latency(1, 3)
        result = OptimalMapper(
            ibm_qx2(), latency, search_initial_mapping=True
        ).map(circuit)
        validate_result(result)
        # The triangle {0,1,2} of QX2 hosts this swap-free.
        assert result.num_inserted_swaps == 0
        assert result.depth == circuit.depth(latency)

    def test_mode2_never_worse_than_identity(self):
        latency = uniform_latency(1, 3)
        for seed in range(4):
            circuit = random_circuit(4, 8, two_qubit_fraction=0.7, seed=seed)
            identity = OptimalMapper(lnn(4), latency).map(
                circuit, initial_mapping=[0, 1, 2, 3]
            )
            searched = OptimalMapper(
                lnn(4), latency, search_initial_mapping=True
            ).map(circuit)
            assert searched.depth <= identity.depth


class TestBudgets:
    def test_time_budget_raises(self):
        circuit = random_circuit(6, 40, two_qubit_fraction=0.9, seed=1)
        mapper = OptimalMapper(
            lnn(6), uniform_latency(1, 3), max_seconds=0.01
        )
        with pytest.raises(SearchBudgetExceeded):
            mapper.map(circuit, initial_mapping=list(range(6)))

    def test_node_budget_message(self):
        circuit = random_circuit(5, 20, two_qubit_fraction=0.9, seed=2)
        mapper = OptimalMapper(lnn(5), uniform_latency(1, 3), max_nodes=5)
        with pytest.raises(SearchBudgetExceeded, match="nodes"):
            mapper.map(circuit, initial_mapping=list(range(5)))


class TestPrefixCap:
    def test_longest_path_bound_reaches_any_mapping(self):
        """The d-layer prefix cap suffices to reach the optimal mapping
        even on a path graph where relayouts need many layers."""
        # Force q0 next to q4 — the farthest relabeling from identity.
        circuit = Circuit(5).cx(0, 4).cx(4, 0).cx(0, 4).cx(4, 0)
        latency = uniform_latency(1, 3)
        result = OptimalMapper(
            lnn(5), latency, search_initial_mapping=True,
            try_swap_free_fast_path=False,
        ).map(circuit)
        validate_result(result)
        assert result.num_inserted_swaps == 0
        assert result.depth == circuit.depth(latency)
