"""Cross-module integration tests: full pipelines on realistic workloads."""

import pytest

from repro.arch import grid, ibm_qx2, ibm_tokyo, lnn, rigetti_aspen4
from repro.baselines import (
    OlsqStyleMapper,
    SabreMapper,
    TrivialMapper,
    ZulehnerMapper,
)
from repro.benchcircuits import olsq_circuit, table2_rows, wille_circuit
from repro.circuit import (
    IBM_LATENCY,
    OLSQ_LATENCY,
    TABLE1_LATENCY,
    parse_qasm,
    to_qasm,
    uniform_latency,
)
from repro.circuit.generators import qft_skeleton, queko_circuit, random_circuit
from repro.core import HeuristicMapper, OptimalMapper
from repro.verify import validate_result


class TestQasmToHardwarePipeline:
    def test_parse_map_verify_export(self):
        source = """
        OPENQASM 2.0; include "qelib1.inc";
        qreg q[4];
        h q[0]; cx q[0],q[1]; cx q[0],q[2]; cx q[0],q[3];
        cx q[1],q[3]; h q[3];
        """
        circuit = parse_qasm(source, name="pipeline")
        result = OptimalMapper(
            lnn(4), uniform_latency(1, 3), search_initial_mapping=True
        ).map(circuit)
        validate_result(result)
        physical = result.to_physical_circuit()
        exported = to_qasm(physical)
        back = parse_qasm(exported)
        assert len(back) == len(physical)


class TestTable1Pipeline:
    @pytest.mark.parametrize("name", ["3_17_13", "ex-1_166", "ham3_102"])
    def test_optimal_mapping_of_3qubit_rows(self, name):
        """3-qubit Table 1 rows map optimally in well under a second."""
        circuit = wille_circuit(name)
        result = OptimalMapper(
            ibm_qx2(), TABLE1_LATENCY, search_initial_mapping=True
        ).map(circuit)
        validate_result(result)
        # A 3-qubit interaction graph always embeds into QX2 (it contains
        # a triangle), so the optimal cycle equals the ideal cycle.
        assert result.depth == circuit.depth(TABLE1_LATENCY)


class TestTable2Pipeline:
    def test_adder_rows_match_published_shape(self):
        """adder: swap-free on 2xN grids, SWAP overhead on QX2."""
        circuit = olsq_circuit("adder")
        ideal = table2_rows("adder")[0].ideal_cycle
        on_grid = OptimalMapper(
            grid(2, 3), OLSQ_LATENCY, search_initial_mapping=True
        ).map(circuit)
        validate_result(on_grid)
        assert on_grid.depth == ideal
        on_qx2 = OptimalMapper(
            ibm_qx2(), OLSQ_LATENCY, search_initial_mapping=True
        ).map(circuit)
        validate_result(on_qx2)
        assert on_qx2.depth > ideal  # C4 does not embed into the bowtie

    def test_olsq_style_agrees_with_toqm(self):
        circuit = olsq_circuit("or")
        ours = OptimalMapper(
            ibm_qx2(), OLSQ_LATENCY, search_initial_mapping=True
        ).map(circuit)
        olsq = OlsqStyleMapper(ibm_qx2(), OLSQ_LATENCY).map(circuit)
        assert ours.depth == olsq.depth

    def test_queko_solved_at_known_depth(self):
        circuit = queko_circuit(rigetti_aspen4(), depth=5, seed=0)
        result = OptimalMapper(
            rigetti_aspen4(), uniform_latency(1, 3), search_initial_mapping=True
        ).map(circuit)
        validate_result(result)
        assert result.depth == 5
        assert result.num_inserted_swaps == 0


class TestTable3Pipeline:
    def test_all_mappers_on_one_workload(self, tokyo):
        circuit = random_circuit(12, 250, two_qubit_fraction=0.55, seed=42)
        depths = {}
        for name, mapper in [
            ("toqm", HeuristicMapper(tokyo, IBM_LATENCY)),
            ("sabre", SabreMapper(tokyo, IBM_LATENCY, seed=0)),
            ("zulehner", ZulehnerMapper(tokyo, IBM_LATENCY)),
            ("trivial", TrivialMapper(tokyo, IBM_LATENCY)),
        ]:
            result = mapper.map(circuit)
            validate_result(result)
            depths[name] = result.depth
        assert depths["toqm"] >= circuit.depth(IBM_LATENCY)
        # The paper's Table 3 shape: TOQM's practical mode beats both
        # baselines on depth; everything beats the trivial router.
        assert depths["toqm"] < depths["sabre"]
        assert depths["toqm"] < depths["zulehner"]
        assert depths["toqm"] < depths["trivial"]


class TestLatencySensitivity:
    def test_swap_latency_changes_schedule(self):
        """The mapper adapts: with cheap SWAPs it may insert more of them."""
        circuit = qft_skeleton(4)
        cheap = OptimalMapper(lnn(4), uniform_latency(1, 1)).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        pricey = OptimalMapper(lnn(4), uniform_latency(1, 5)).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(cheap)
        validate_result(pricey)
        assert cheap.depth < pricey.depth
