"""Kernel backend registry + cross-backend bit-identity properties.

The backends (``pure`` / ``vector`` / ``compiled``) promise *identical*
search behaviour — same schedules, same node counts, same prune
counters — differing only in speed.  These tests pin that contract with
hypothesis over random circuits, for every backend that constructs on
this interpreter (the CI matrix runs the suite with and without the C
extension built).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.arch import grid, lnn
from repro.circuit import Circuit, uniform_latency
from repro.core import HeuristicMapper, OptimalMapper
from repro.core.heuristic import HeuristicMemo, heuristic_cost
from repro.core.kernels import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.core.kernels.api import KernelBackend
from repro.core.problem import MappingProblem
from repro.obs.schema import STAT_KERNEL_BACKEND

from .test_heuristic import make_node

BACKENDS = available_backends()

#: Counters that must match bit-for-bit across backends.  ``depth`` is
#: the result itself; the rest prove the backends walked the same tree
#: in the same order (generation order feeds the heap tie-break).
PARITY_KEYS = (
    "nodes_expanded",
    "nodes_generated",
    "filtered_equivalent",
    "filtered_dominated",
    "killed",
    "pruned_by_bound",
    "swaps_restricted",
    "memo_hits",
    "memo_misses",
)


def _parity_signature(result):
    stats = result.stats
    return (result.depth, result.initial_mapping) + tuple(
        stats.get(key) for key in PARITY_KEYS
    )


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def circuits(draw, min_qubits=2, max_qubits=4, max_gates=8):
    n = draw(st.integers(min_qubits, max_qubits))
    circuit = Circuit(n)
    for _ in range(draw(st.integers(1, max_gates))):
        if n >= 2 and draw(st.booleans()):
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            circuit.cx(a, b)
        else:
            circuit.h(draw(st.integers(0, n - 1)))
    return circuit


@st.composite
def latencies(draw):
    return uniform_latency(draw(st.integers(1, 2)), draw(st.integers(1, 4)))


# ---------------------------------------------------------------------------
# Registry / capability probe
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_pure_always_available(self):
        assert "pure" in BACKENDS

    def test_available_is_subset_of_names(self):
        assert set(BACKENDS) <= set(BACKEND_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="nope"):
            resolve_backend("nope")

    def test_instances_are_cached(self):
        assert get_backend("pure") is get_backend("pure")

    def test_instance_passthrough(self):
        backend = get_backend("pure")
        assert resolve_backend(backend) is backend

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "pure")
        assert resolve_backend(None).name == "pure"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "definitely-not-real")
        assert resolve_backend("pure").name == "pure"

    def test_probe_prefers_fastest_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        resolved = resolve_backend(None).name
        # The probe must pick the first *available* name in fastest-first
        # order, never something that failed to construct.
        for candidate in ("compiled", "vector", "pure"):
            if candidate in BACKENDS:
                assert resolved == candidate
                break

    def test_every_backend_is_kernel_backend(self):
        for name in BACKENDS:
            assert isinstance(get_backend(name), KernelBackend)


# ---------------------------------------------------------------------------
# Whole-search parity: every backend walks the identical tree
# ---------------------------------------------------------------------------


@pytest.mark.skipif(len(BACKENDS) < 2, reason="only one backend built")
class TestSearchParity:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits(), latency=latencies(), data=st.data())
    def test_mode1_identical(self, circuit, latency, data):
        arch = lnn(circuit.num_qubits)
        signatures = {
            name: _parity_signature(
                OptimalMapper(arch, latency, kernel=name).map(circuit)
            )
            for name in BACKENDS
        }
        reference = signatures["pure"]
        assert all(sig == reference for sig in signatures.values()), signatures

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits(max_qubits=4, max_gates=6), latency=latencies())
    def test_mode2_identical(self, circuit, latency):
        arch = lnn(circuit.num_qubits)
        signatures = {
            name: _parity_signature(
                OptimalMapper(
                    arch,
                    latency,
                    search_initial_mapping=True,
                    kernel=name,
                ).map(circuit)
            )
            for name in BACKENDS
        }
        reference = signatures["pure"]
        assert all(sig == reference for sig in signatures.values()), signatures

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits(max_qubits=5, max_gates=10), latency=latencies())
    def test_heuristic_mapper_identical(self, circuit, latency):
        arch = grid(2, 3)
        signatures = {
            name: _parity_signature(
                HeuristicMapper(arch, latency, kernel=name).map(circuit)
            )
            for name in BACKENDS
        }
        reference = signatures["pure"]
        assert all(sig == reference for sig in signatures.values()), signatures

    def test_ablations_survive_backends(self):
        # Pruning toggles route through the same kernel seam; a backend
        # must not silently re-enable what the config switched off.
        circuit = Circuit(4).cx(0, 3).cx(1, 2).cx(0, 2)
        arch = lnn(4)
        for kwargs in (
            {"prune_swaps": False},
            {"dominance": False},
            {"memoize": False},
            {"reduce_symmetry": False, "search_initial_mapping": True},
        ):
            signatures = [
                _parity_signature(
                    OptimalMapper(
                        arch, uniform_latency(1, 3), kernel=name, **kwargs
                    ).map(circuit)
                )
                for name in BACKENDS
            ]
            assert len(set(signatures)) == 1, (kwargs, signatures)


# ---------------------------------------------------------------------------
# heuristic_batch: windowed truncation + memo transparency
# ---------------------------------------------------------------------------


def _frontier_nodes(circuit, arch):
    """The root plus its reference expansion, unscored."""
    from repro.core.expander import ExpansionConfig, expand

    problem = MappingProblem(circuit, arch)
    root = make_node(problem)
    children = expand(problem, root, ExpansionConfig())
    return problem, [root] + children


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestHeuristicBatch:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits(max_qubits=4, max_gates=8), window=st.one_of(
        st.none(), st.integers(1, 4)
    ))
    def test_matches_scalar_reference(self, backend_name, circuit, window):
        # Windowed truncation must batch exactly like the scalar path:
        # the window trims the per-qubit look-ahead before scoring.
        problem, nodes = _frontier_nodes(circuit, lnn(circuit.num_qubits))
        expected = [
            heuristic_cost(problem, node, window=window) for node in nodes
        ]
        backend = get_backend(backend_name)
        backend.heuristic_batch(problem, nodes, window=window)
        assert [node.h for node in nodes] == expected

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit=circuits(max_qubits=4, max_gates=8))
    def test_memo_transparent(self, backend_name, circuit):
        # A memo must never change scores, only skip work — and its
        # hit/miss totals must match scalar evaluation in list order.
        problem, nodes = _frontier_nodes(circuit, lnn(circuit.num_qubits))
        bare = list(nodes)
        backend = get_backend(backend_name)
        backend.heuristic_batch(problem, bare)
        expected = [node.h for node in bare]

        memo = HeuristicMemo()
        for node in nodes:
            node.h = None
        backend.heuristic_batch(problem, nodes, memo=memo)
        assert [node.h for node in nodes] == expected
        assert memo.hits + memo.misses == len(nodes)
        assert memo.misses == len(memo.table)

        # Second pass over the same states: all hits, same values.
        before = memo.hits
        for node in nodes:
            node.h = None
        backend.heuristic_batch(problem, nodes, memo=memo)
        assert [node.h for node in nodes] == expected
        assert memo.hits == before + len(nodes)


# ---------------------------------------------------------------------------
# Stats surface
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestStatsRecordBackend:
    def test_optimal_mapper_records_backend(self, backend_name):
        circuit = Circuit(3).cx(0, 2).cx(0, 1)
        result = OptimalMapper(
            lnn(3), uniform_latency(1, 3), kernel=backend_name
        ).map(circuit)
        assert result.stats[STAT_KERNEL_BACKEND] == backend_name

    def test_heuristic_mapper_records_backend(self, backend_name):
        circuit = Circuit(3).cx(0, 2).cx(1, 2)
        result = HeuristicMapper(
            lnn(3), uniform_latency(1, 3), kernel=backend_name
        ).map(circuit)
        assert result.stats[STAT_KERNEL_BACKEND] == backend_name
