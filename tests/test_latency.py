"""Unit tests for latency models."""

import pytest

from repro.circuit import (
    IBM_LATENCY,
    OLSQ_LATENCY,
    QFT_LATENCY,
    LatencyModel,
    uniform_latency,
)
from repro.circuit.gate import single, swap, two


class TestLookup:
    def test_defaults_by_operand_count(self):
        model = LatencyModel(1, 2, 6)
        assert model.gate_latency(single("h", 0)) == 1
        assert model.gate_latency(two("cx", 0, 1)) == 2
        assert model.gate_latency(swap(0, 1)) == 6
        assert model.swap_latency() == 6

    def test_table_override_wins(self):
        model = LatencyModel(1, 2, 6, table={"cz": 4})
        assert model.gate_latency(two("cz", 0, 1)) == 4
        assert model.gate_latency(two("cx", 0, 1)) == 2

    def test_swap_table_override(self):
        model = LatencyModel(1, 1, 3, table={"swap": 9})
        assert model.swap_latency() == 9
        assert model.gate_latency(swap(0, 1)) == 9


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_rejects_non_positive_latencies(self, bad):
        with pytest.raises(ValueError):
            LatencyModel(single_qubit_cycles=bad)

    def test_rejects_bad_table_entry(self):
        with pytest.raises(ValueError):
            LatencyModel(table={"cx": 0})


class TestPaperModels:
    def test_qft_latency_all_ones(self):
        assert QFT_LATENCY.gate_latency(two("gt", 0, 1)) == 1
        assert QFT_LATENCY.swap_latency() == 1

    def test_olsq_latency(self):
        assert OLSQ_LATENCY.gate_latency(two("cx", 0, 1)) == 1
        assert OLSQ_LATENCY.swap_latency() == 3

    def test_ibm_latency(self):
        assert IBM_LATENCY.gate_latency(single("h", 0)) == 1
        assert IBM_LATENCY.gate_latency(two("cx", 0, 1)) == 2
        assert IBM_LATENCY.swap_latency() == 6

    def test_uniform_factory(self):
        model = uniform_latency(2, 5)
        assert model.gate_latency(single("x", 0)) == 2
        assert model.gate_latency(two("cx", 0, 1)) == 2
        assert model.swap_latency() == 5
