"""Run ledger, cross-run analytics, fleet monitor, CLI integration.

Covers the observability ledger stack end to end:

* ``RunLedger`` / ``LedgerRun`` — open/finish/read roundtrip, prefix
  lookup, idempotent finish, config fingerprinting, gc retention;
* torn-tail tolerance — a reader racing a concurrent appender must see
  every complete row and silently drop only the truncated last line;
* correlation IDs — ``run_id`` threaded through ``Telemetry`` /
  ``TelemetrySpec`` into progress events, metrics snapshots, worker
  shards and the fleet rollup;
* :mod:`repro.analysis.runs` — counter-by-counter diff (deterministic
  counters vs noisy timings) and the same-fingerprint regression scan;
* ``FleetMonitor`` — frame rendering from synthetic shard directories;
* Prometheus exposition edge cases — empty registries, zero-sample
  histograms, names needing sanitization, bool/None sample values;
* the ``repro runs ...`` / ``repro top`` / ``--ledger-dir`` CLI.
"""

import io
import json
import os

import pytest

from repro.analysis.runs import (
    diff_runs,
    find_regressions,
    fingerprint_groups,
    list_runs,
    render_diff,
    render_regressions,
    render_run,
    render_runs_table,
)
from repro.circuit import to_qasm
from repro.circuit.generators import qft_skeleton
from repro.cli import main
from repro.obs import (
    JsonlSink,
    MemorySink,
    RunLedger,
    Telemetry,
    TelemetrySpec,
    config_fingerprint,
    new_run_id,
    read_jsonl,
)
from repro.obs.export import (
    run_to_prometheus,
    summarize_run,
    write_fleet_meta,
)
from repro.obs.ledger import _looks_like_run_dir
from repro.obs.monitor import FleetMonitor


# ----------------------------------------------------------------------
# Ledger core
# ----------------------------------------------------------------------

class TestRunLedgerCore:
    def test_open_finish_read_roundtrip(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        run = ledger.open_run("map", {"circuit": "qft:5", "arch": "lnn-5"})
        run.add_artifact("metrics", str(tmp_path / "metrics.jsonl"))
        row = run.finish(
            "ok", stats={"nodes_expanded": 42, "seconds": 0.5},
            extra={"depth": 23},
        )
        rows = ledger.runs()
        assert len(rows) == 1
        stored = rows[0]
        assert stored["run_id"] == run.run_id
        assert stored["type"] == "run"
        assert stored["kind"] == "map"
        assert stored["status"] == "ok"
        assert stored["fingerprint"] == row["fingerprint"]
        assert stored["stats"]["nodes_expanded"] == 42
        assert stored["depth"] == 23
        assert stored["artifacts"]["metrics"].endswith("metrics.jsonl")
        assert "git_sha" in stored and "python_version" in stored

    def test_nothing_written_before_finish(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.open_run("map", {})
        assert ledger.runs() == []

    def test_finish_is_idempotent(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        run = ledger.open_run("map", {})
        run.finish("ok")
        assert run.finish("error") == {}
        assert len(ledger.runs()) == 1
        assert ledger.runs()[0]["status"] == "ok"

    def test_get_by_prefix_and_errors(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        run_a = ledger.open_run("map", {"x": 1})
        run_a.finish("ok")
        assert ledger.get(run_a.run_id[:12])["run_id"] == run_a.run_id
        with pytest.raises(KeyError):
            ledger.get("nonexistent")
        run_b = ledger.open_run("map", {"x": 2})
        run_b.finish("ok")
        shared = os.path.commonprefix([run_a.run_id, run_b.run_id])
        if shared:  # same-second stamps share a prefix -> ambiguous
            with pytest.raises(KeyError):
                ledger.get(shared)

    def test_fingerprint_ignores_volatile_keys(self):
        base = {"circuit": "qft:5", "mapper": "optimal"}
        with_outputs = dict(
            base, json_out="/tmp/a.json", metrics_out="/tmp/b.jsonl",
            telemetry_dir="/tmp/tel",
        )
        assert config_fingerprint(base) == config_fingerprint(with_outputs)
        assert config_fingerprint(base) != config_fingerprint(
            dict(base, mapper="heuristic")
        )

    def test_run_id_shape(self):
        run_id = new_run_id()
        assert _looks_like_run_dir(run_id)
        assert not _looks_like_run_dir("fleet")
        assert not _looks_like_run_dir("not-arunid")


# ----------------------------------------------------------------------
# Torn-tail tolerance (concurrently-appended ledgers)
# ----------------------------------------------------------------------

class TestTornTail:
    def test_reader_drops_truncated_last_line(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.open_run("map", {"x": 1}).finish("ok")
        ledger.open_run("map", {"x": 2}).finish("ok")
        with open(ledger.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "run", "run_id": "20990101T0000')  # torn
        rows = ledger.runs()
        assert len(rows) == 2  # every complete row, torn tail dropped
        with pytest.raises(ValueError):
            ledger.entries(strict=True)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = str(tmp_path / "index.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type": "run"}\n')
            handle.write("garbage not json\n")
            handle.write('{"type": "run"}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_jsonl_sink_emits_one_line_per_record(self, tmp_path):
        # The single-write append is what makes concurrent ledgers safe:
        # record + newline must leave emit() as one write, never two.
        path = str(tmp_path / "out.jsonl")
        writes = []
        with JsonlSink(path) as sink:
            sink.emit({"type": "a"})  # opens the lazy handle
            original = sink._handle.write
            sink._handle.write = lambda text: (
                writes.append(text), original(text)
            )[1]
            sink.emit({"type": "b"})
            sink.emit({"type": "c"})
        assert len(writes) == 2
        assert all(w.endswith("\n") and w.count("\n") == 1 for w in writes)
        assert [r["type"] for r in read_jsonl(path)] == ["a", "b", "c"]


# ----------------------------------------------------------------------
# gc retention
# ----------------------------------------------------------------------

class TestGc:
    def _run_with_artifacts(self, ledger, payload):
        run = ledger.open_run("map", payload)
        path = run.artifact_path("trace.jsonl", register="trace")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{}\n")
        run.finish("ok")
        return run

    def test_prunes_artifacts_keeps_index_rows(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        runs = [
            self._run_with_artifacts(ledger, {"i": i}) for i in range(3)
        ]
        pruned = ledger.gc(keep=1)
        assert sorted(pruned) == sorted(r.run_id for r in runs[:2])
        assert not os.path.isdir(runs[0].directory)
        assert not os.path.isdir(runs[1].directory)
        assert os.path.isdir(runs[2].directory)  # newest survives
        rows = ledger.runs()
        assert len(rows) == 3  # index rows never deleted
        gc_rows = [
            r for r in ledger.entries() if r.get("type") == "gc"
        ]
        assert len(gc_rows) == 1
        assert sorted(gc_rows[0]["pruned"]) == sorted(pruned)

    def test_prunes_unindexed_crashed_run_dirs_only(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        self._run_with_artifacts(ledger, {"i": 0})
        crashed = tmp_path / new_run_id()  # opened, never finished
        crashed.mkdir()
        foreign = tmp_path / "not-a-run-dir"
        foreign.mkdir()
        pruned = ledger.gc(keep=5)
        assert pruned == [crashed.name]
        assert foreign.is_dir()  # never touch foreign directories

    def test_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger(str(tmp_path)).gc(keep=-1)


# ----------------------------------------------------------------------
# Correlation-ID threading
# ----------------------------------------------------------------------

class TestCorrelationId:
    def test_progress_events_carry_run_id(self):
        from repro.obs import SearchProgressEvent

        telemetry = Telemetry(progress_every=1, run_id="RUN-1")
        seen = []
        telemetry.progress.subscribe(seen.append)
        telemetry.publish_progress(SearchProgressEvent(
            mapper="optimal", phase="search", nodes_expanded=1,
            nodes_generated=1, heap_size=1, best_f=0,
            elapsed_seconds=0.1,
        ))
        assert seen and all(
            event.extra.get("run_id") == "RUN-1" for event in seen
        )

    def test_metrics_snapshot_carries_run_id(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, run_id="RUN-2")
        telemetry.finish()
        snapshots = sink.of_type("metrics")
        assert snapshots and all(
            r.get("run_id") == "RUN-2" for r in snapshots
        )

    def test_spec_propagates_run_id_to_workers(self, tmp_path):
        spec = TelemetrySpec(directory=str(tmp_path), run_id="RUN-3")
        assert spec.build(worker_id=1).run_id == "RUN-3"


# ----------------------------------------------------------------------
# Cross-run analytics
# ----------------------------------------------------------------------

def _row(run_id, fingerprint="fp1", status="ok", **stats):
    return {
        "type": "run", "run_id": run_id, "kind": "map",
        "status": status, "fingerprint": fingerprint,
        "wall_s": stats.pop("wall_s", 0.5), "stats": stats,
    }


class TestRunsAnalysis:
    def test_identical_runs_have_zero_counter_deltas(self):
        a = _row("r1", nodes_expanded=100, pruned_by_bound=7, seconds=0.31)
        b = _row("r2", nodes_expanded=100, pruned_by_bound=7, seconds=0.29)
        diff = diff_runs(a, b)
        assert diff["fingerprint_match"]
        assert diff["counter_deltas"] == 0
        assert "seconds" in diff["timings"]  # timing, never a delta
        assert "nodes_expanded" in diff["counters"]
        assert "counter-identical" in render_diff(diff, "r1", "r2")

    def test_counter_drift_is_counted_with_pct(self):
        a = _row("r1", nodes_expanded=100)
        b = _row("r2", nodes_expanded=150)
        diff = diff_runs(a, b)
        assert diff["counter_deltas"] == 1
        cell = diff["counters"]["nodes_expanded"]
        assert cell["delta"] == 50 and cell["pct"] == 50.0

    def test_fingerprint_mismatch_is_flagged(self):
        diff = diff_runs(
            _row("r1", fingerprint="fpA"), _row("r2", fingerprint="fpB")
        )
        assert not diff["fingerprint_match"]
        assert "warning" in render_diff(diff, "r1", "r2")

    def test_identical_repeats_produce_no_regressions(self):
        rows = [
            _row(f"r{i}", nodes_expanded=500, seconds=0.5)
            for i in range(4)
        ]
        assert find_regressions(rows) == []
        assert fingerprint_groups(rows) == 1

    def test_injected_slow_run_is_flagged(self):
        rows = [
            _row("r1", nodes_expanded=500, seconds=0.5),
            _row("r2", nodes_expanded=500, seconds=0.5),
            _row("r3", nodes_expanded=1000, seconds=0.5),  # 2x the work
        ]
        findings = find_regressions(rows)
        assert len(findings) == 1
        finding = findings[0]
        assert finding["run_id"] == "r3"
        assert finding["metric"] == "nodes_expanded"
        assert finding["baseline_run"] == "r1"
        assert finding["ratio"] == 2.0
        assert "r3" in render_regressions(findings, scanned=3)

    def test_rate_gate_skips_sub_threshold_runs(self):
        # 2ms runs: timer noise dominates, the throughput gate must not
        # fire no matter how bad the measured rate looks.
        rows = [
            _row("r1", nodes_expanded=100, seconds=0.002),
            _row("r2", nodes_expanded=100, seconds=0.02),
        ]
        assert find_regressions(rows) == []

    def test_budget_runs_do_not_participate(self):
        rows = [
            _row("r1", nodes_expanded=500, seconds=0.5),
            _row("r2", status="budget", nodes_expanded=9999, seconds=0.5),
        ]
        assert find_regressions(rows) == []

    def test_list_and_render(self):
        rows = [_row(f"r{i}") for i in range(5)]
        assert [r["run_id"] for r in list_runs(rows, limit=2)] == ["r3", "r4"]
        table = render_runs_table(rows)
        assert "r0" in table and "fingerprint" in table
        assert "fp1" in render_run(rows[0])


# ----------------------------------------------------------------------
# Fleet monitor
# ----------------------------------------------------------------------

def _write_shard(directory, name, records):
    with JsonlSink(os.path.join(directory, name)) as sink:
        for record in records:
            sink.emit(record)


class TestFleetMonitor:
    def _fleet_dir(self, tmp_path, total_tasks=4):
        directory = str(tmp_path / "fleet")
        write_fleet_meta(
            directory, total_tasks=total_tasks, workers=2,
            scheduler="stealing", run_id="RUN-M",
        )
        base = 1000.0
        _write_shard(directory, "worker-1.jsonl", [
            {"type": "worker_task", "ok": True, "nodes_expanded": 50,
             "seconds": 0.5, "ts": base + 1, "depth": 20,
             "run_id": "RUN-M",
             "warm_cache": {"problem_hits": 3, "problem_misses": 1}},
            {"type": "worker_task", "ok": True, "nodes_expanded": 30,
             "seconds": 0.3, "ts": base + 2, "depth": 18,
             "run_id": "RUN-M"},
        ])
        _write_shard(directory, "worker-2.jsonl", [
            {"type": "worker_task", "ok": False, "nodes_expanded": 20,
             "seconds": 0.2, "ts": base + 1.5, "depth": None,
             "run_id": "RUN-M",
             "peak_rss_bytes": 64 * 1024 * 1024},
        ])
        return directory, base

    def test_snapshot_aggregates(self, tmp_path):
        directory, base = self._fleet_dir(tmp_path)
        snap = FleetMonitor(directory).snapshot(now=base + 3)
        assert snap["run_id"] == "RUN-M"
        assert snap["completed"] == 3 and snap["ok"] == 2
        assert snap["total_tasks"] == 4 and snap["queue_depth"] == 1
        assert snap["nodes"] == 100
        assert snap["warm_hit_rate"] == pytest.approx(0.75)
        # incumbent timeline is a running minimum of completed depths
        assert [d for _, d in snap["incumbent_timeline"]] == [20, 18]
        assert not snap["done"]

    def test_frame_renders_and_completes(self, tmp_path):
        directory, base = self._fleet_dir(tmp_path, total_tasks=3)
        frame = FleetMonitor(directory).frame(now=base + 3)
        assert "run RUN-M" in frame
        assert "tasks 3/3" in frame
        assert "queue 0" in frame
        assert "worker-1.jsonl" in frame and "worker-2.jsonl" in frame
        assert "incumbent: d20@" in frame
        assert frame.endswith("fleet complete")

    def test_watch_exits_on_completion(self, tmp_path):
        directory, _ = self._fleet_dir(tmp_path, total_tasks=3)
        stream = io.StringIO()
        frames = FleetMonitor(directory).watch(
            interval=0.0, iterations=5, stream=stream, clear=False,
        )
        assert frames == 1  # fleet already complete -> first frame exits
        assert "fleet complete" in stream.getvalue()
        assert "\x1b[" not in stream.getvalue()  # clear=False: no ANSI

    def test_empty_directory_frame(self, tmp_path):
        frame = FleetMonitor(str(tmp_path)).frame()
        assert "(no worker shards yet)" in frame
        assert not frame.endswith("fleet complete")


# ----------------------------------------------------------------------
# Prometheus exposition edge cases
# ----------------------------------------------------------------------

class TestPrometheusEdgeCases:
    @staticmethod
    def _assert_parseable(text):
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # unparseable values (True/None) raise here
            metric = name_part.split("{", 1)[0]
            assert metric.replace("_", "a").isalnum(), line

    def test_empty_registry_yields_empty_exposition(self):
        summary = summarize_run([{"type": "metrics", "metrics": {}}])
        assert run_to_prometheus(summary) == ""

    def test_zero_sample_histogram_stays_parseable(self):
        summary = summarize_run([{
            "type": "metrics",
            "metrics": {
                "empty.hist": {
                    "count": 0, "sum": 0.0, "min": None, "max": None,
                },
            },
        }])
        text = run_to_prometheus(summary)
        assert "repro_empty_hist_count 0" in text
        assert "None" not in text  # null min/max coerced to 0
        self._assert_parseable(text)

    def test_names_needing_sanitization(self):
        summary = summarize_run([{
            "type": "metrics",
            "metrics": {
                "search.nodes-expanded/total": 7,
                "gauge.value": {"value": True, "max": None},
            },
        }])
        text = run_to_prometheus(summary)
        assert "repro_search_nodes_expanded_total 7" in text
        assert "repro_gauge_value 1" in text  # bool -> 1, not "True"
        assert "repro_gauge_value_max 0" in text  # None -> 0
        self._assert_parseable(text)
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

@pytest.fixture
def qasm_dir(tmp_path):
    directory = tmp_path / "circuits"
    directory.mkdir()
    for name, circuit in (
        ("qft4", qft_skeleton(4)),
        ("qft5", qft_skeleton(5)),
    ):
        (directory / f"{name}.qasm").write_text(to_qasm(circuit))
    return str(directory)


class TestLedgerCli:
    def _map(self, ledger_dir, extra=()):
        return main([
            "map", "--circuit", "qft:5", "--arch", "lnn-5",
            "--mapper", "optimal", "--ledger-dir", ledger_dir, *extra,
        ])

    def test_map_records_run(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "runs")
        assert self._map(ledger_dir) == 0
        err = capsys.readouterr().err
        assert "recorded run" in err
        rows = RunLedger(ledger_dir).runs()
        assert len(rows) == 1
        row = rows[0]
        assert row["kind"] == "map" and row["status"] == "ok"
        assert row["stats"]["nodes_expanded"] > 0
        assert row["depth"] == 23 and row["optimal"] is True

    def test_deterministic_repeat_diffs_clean(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "runs")
        assert self._map(ledger_dir) == 0
        assert self._map(ledger_dir) == 0
        run_a, run_b = [
            r["run_id"] for r in RunLedger(ledger_dir).runs()
        ]
        code = main([
            "runs", "diff", run_a, run_b,
            "--ledger-dir", ledger_dir, "--fail-on-delta",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 counter delta(s) — runs are counter-identical" in out

    def test_regressions_flag_injected_slow_run(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "runs")
        assert self._map(ledger_dir) == 0
        ledger = RunLedger(ledger_dir)
        baseline = ledger.runs()[0]
        slow = dict(baseline, run_id=new_run_id())
        slow["stats"] = dict(
            baseline["stats"],
            nodes_expanded=baseline["stats"]["nodes_expanded"] * 3,
        )
        ledger.append(slow)
        code = main(["runs", "regressions", "--ledger-dir", ledger_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "nodes_expanded" in out and slow["run_id"] in out
        # identical history scans clean with exit 0
        clean_dir = str(tmp_path / "clean")
        assert self._map(clean_dir) == 0
        assert self._map(clean_dir) == 0
        assert main(
            ["runs", "regressions", "--ledger-dir", clean_dir]
        ) == 0

    def test_map_batch_stamps_run_id_everywhere(
        self, tmp_path, qasm_dir, capsys,
    ):
        ledger_dir = str(tmp_path / "runs")
        code = main([
            "map-batch", "--dir", qasm_dir, "--arch", "lnn-5",
            "--mapper", "heuristic", "--workers", "2",
            "--ledger-dir", ledger_dir,
        ])
        assert code == 0
        capsys.readouterr()
        ledger = RunLedger(ledger_dir)
        row = ledger.runs()[0]
        fleet_dir = row["artifacts"]["telemetry_dir"]
        shards = [
            name for name in os.listdir(fleet_dir)
            if name.startswith("worker-") and name.endswith(".jsonl")
        ]
        assert shards
        for shard in shards:  # every worker shard carries the run_id
            task_records = [
                r for r in read_jsonl(os.path.join(fleet_dir, shard))
                if r.get("type") in ("worker_meta", "worker_task")
            ]
            assert task_records
            assert all(
                r.get("run_id") == row["run_id"] for r in task_records
            )
        with open(os.path.join(fleet_dir, "fleet.json")) as handle:
            fleet = json.load(handle)
        assert fleet["fleet"]["run_id"] == row["run_id"]

    def test_runs_list_show_and_gc(self, tmp_path, qasm_dir, capsys):
        ledger_dir = str(tmp_path / "runs")
        assert self._map(ledger_dir) == 0
        assert main([
            "map-batch", "--dir", qasm_dir, "--arch", "lnn-5",
            "--mapper", "heuristic", "--workers", "1",
            "--ledger-dir", ledger_dir,
        ]) == 0
        capsys.readouterr()

        assert main(["runs", "list", "--ledger-dir", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert "map-batch" in out and out.count("ok") >= 2

        assert main([
            "runs", "list", "--ledger-dir", ledger_dir,
            "--kind", "map", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1 and rows[0]["kind"] == "map"

        run_id = rows[0]["run_id"]
        assert main([
            "runs", "show", run_id, "--ledger-dir", ledger_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert run_id in out and "fingerprint" in out

        ledger = RunLedger(ledger_dir)
        batch = ledger.runs(kind="map-batch")[0]
        batch_dir = ledger.artifact_dir(batch["run_id"])
        assert os.path.isdir(batch_dir)
        assert main([
            "runs", "gc", "--keep", "0", "--ledger-dir", ledger_dir,
        ]) == 0
        assert not os.path.isdir(batch_dir)  # artifacts pruned
        assert len(ledger.runs()) == 2  # index rows survive gc

    def test_unknown_run_id_errors(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "runs")
        assert self._map(ledger_dir) == 0
        capsys.readouterr()
        assert main(
            ["runs", "show", "zzz", "--ledger-dir", ledger_dir]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_top_once_renders_frame(self, tmp_path, qasm_dir, capsys):
        ledger_dir = str(tmp_path / "runs")
        assert main([
            "map-batch", "--dir", qasm_dir, "--arch", "lnn-5",
            "--mapper", "heuristic", "--workers", "1",
            "--ledger-dir", ledger_dir,
        ]) == 0
        capsys.readouterr()
        row = RunLedger(ledger_dir).runs()[0]
        fleet_dir = row["artifacts"]["telemetry_dir"]
        assert main(["top", fleet_dir, "--once"]) == 0
        out = capsys.readouterr().out
        assert f"run {row['run_id']}" in out
        assert "fleet complete" in out

    def test_top_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err

    def test_env_var_activates_ledger(self, tmp_path, monkeypatch, capsys):
        ledger_dir = str(tmp_path / "envruns")
        monkeypatch.setenv("REPRO_LEDGER_DIR", ledger_dir)
        assert main([
            "map", "--circuit", "qft:4", "--arch", "lnn-4",
            "--mapper", "heuristic",
        ]) == 0
        assert "recorded run" in capsys.readouterr().err
        assert len(RunLedger(ledger_dir).runs()) == 1

    def test_no_ledger_flags_no_ledger_writes(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert main([
            "map", "--circuit", "qft:4", "--arch", "lnn-4",
            "--mapper", "heuristic",
        ]) == 0
        capsys.readouterr()
        assert not (tmp_path / ".repro").exists()
