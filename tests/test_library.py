"""Unit tests for the architecture library."""

import pytest

from repro.arch import (
    architecture_names,
    by_name,
    fully_connected,
    grid,
    grid_index,
    ibm_melbourne,
    ibm_qx2,
    ibm_tokyo,
    lnn,
    rigetti_aspen4,
)


class TestShapes:
    def test_lnn(self):
        g = lnn(7)
        assert g.num_qubits == 7
        assert len(g.edges) == 6
        assert all(len(g.neighbors(p)) <= 2 for p in range(7))

    def test_grid_counts(self):
        g = grid(3, 4)
        assert g.num_qubits == 12
        # 3*(4-1) horizontal + 4*(3-1) vertical
        assert len(g.edges) == 17

    def test_grid_index_column_major(self):
        assert grid_index(2, 0, 0) == 0
        assert grid_index(2, 1, 0) == 1
        assert grid_index(2, 0, 3) == 6

    def test_qx2_bowtie(self):
        g = ibm_qx2()
        assert g.num_qubits == 5
        assert len(g.edges) == 6
        assert g.are_adjacent(0, 2) and g.are_adjacent(2, 4)
        assert not g.are_adjacent(0, 3)

    def test_tokyo(self):
        g = ibm_tokyo()
        assert g.num_qubits == 20
        # 4 rows x 4 horizontal + 5 cols x 3 vertical + 12 diagonals
        assert len(g.edges) == 16 + 15 + 12
        assert g.are_adjacent(1, 7)  # diagonal
        assert g.diameter <= 4

    def test_aspen4_two_octagons(self):
        g = rigetti_aspen4()
        assert g.num_qubits == 16
        assert len(g.edges) == 18
        assert g.are_adjacent(1, 14) and g.are_adjacent(2, 13)
        degrees = [len(g.neighbors(p)) for p in range(16)]
        assert max(degrees) == 3

    def test_melbourne_is_2xn(self):
        g = ibm_melbourne()
        assert g.num_qubits == 14

    def test_fully_connected(self):
        g = fully_connected(5)
        assert len(g.edges) == 10
        assert g.diameter == 1


class TestLookup:
    @pytest.mark.parametrize("name", ["ibmqx2", "grid2by3", "grid2by4", "aspen-4", "tokyo"])
    def test_by_name_fixed(self, name):
        assert by_name(name).num_qubits >= 5

    def test_by_name_parametric(self):
        assert by_name("lnn-9").num_qubits == 9
        assert by_name("grid3x3").num_qubits == 9
        assert by_name("full-4").num_qubits == 4

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("does-not-exist")

    def test_architecture_names_resolvable(self):
        for name in architecture_names():
            assert by_name(name).num_qubits > 0
