"""Unit tests for the observability subsystem (repro.obs)."""

import json
import time

import pytest

from repro.obs import (
    DEFAULT_MAX_SPANS,
    FanoutSink,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TELEMETRY,
    NULL_TRACER,
    ProgressPublisher,
    SearchProgressEvent,
    Telemetry,
    Tracer,
    read_jsonl,
    resolve,
)


def make_event(expanded=10, phase="search", **extra):
    return SearchProgressEvent(
        mapper="toqm-optimal",
        phase=phase,
        nodes_expanded=expanded,
        nodes_generated=3 * expanded,
        heap_size=7,
        best_f=42,
        elapsed_seconds=0.5,
        extra=extra,
    )


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("search") as root:
            with tracer.span("expand"):
                with tracer.span("heuristic"):
                    pass
            with tracer.span("filter"):
                pass
        assert tracer.roots == [root]
        assert [c.name for c in root.children] == ["expand", "filter"]
        assert [c.name for c in root.children[0].children] == ["heuristic"]

    def test_parent_ids_follow_nesting(self):
        tracer = Tracer()
        with tracer.span("search") as root:
            with tracer.span("expand") as child:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id

    def test_timing_is_monotone_and_contained(self):
        tracer = Tracer()
        with tracer.span("search") as root:
            time.sleep(0.01)
            with tracer.span("expand") as child:
                time.sleep(0.01)
        assert child.duration > 0
        assert root.duration >= child.duration
        assert root.start <= child.start
        assert root.end >= child.end

    def test_attrs_set_and_chained(self):
        tracer = Tracer()
        with tracer.span("search", depth=3) as span:
            span.set(nodes=100)
        record = span.to_record()
        assert record["attrs"] == {"depth": 3, "nodes": 100}
        assert record["type"] == "span"
        assert record["duration_ms"] >= 0

    def test_exception_recorded_on_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("search") as span:
                raise ValueError("boom")
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None

    def test_finished_spans_stream_to_sink(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("search"):
            with tracer.span("expand"):
                pass
        # children finish (and emit) before their parent
        assert [r["name"] for r in sink.of_type("span")] == [
            "expand", "search",
        ]
        assert sink.records[0]["depth"] == 1
        assert sink.records[1]["depth"] == 0

    def test_max_spans_cap_degrades_to_null_span(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("search"):
            with tracer.span("expand"):
                pass
            extra = tracer.span("expand")
        assert extra is NULL_SPAN
        assert tracer.num_spans == 2
        assert tracer.dropped == 1
        assert "dropped" in tracer.render_tree()

    def test_default_cap_is_generous(self):
        assert Tracer().max_spans == DEFAULT_MAX_SPANS

    def test_render_tree_shows_names_and_truncates(self):
        tracer = Tracer()
        with tracer.span("search"):
            for _ in range(5):
                with tracer.span("expand"):
                    pass
        tree = tracer.render_tree(max_children=3)
        assert tree.count("expand") == 3
        assert "+2 more" in tree
        assert tree.splitlines()[0].lstrip().startswith("search")

    def test_null_tracer_is_free(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("search", anything=1)
        with span as inner:
            assert inner.set(more=2) is inner
        assert NULL_TRACER.render_tree() == ""


class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("search.nodes_expanded").inc()
        registry.counter("search.nodes_expanded").inc(4)
        registry.gauge("search.heap_size").set(10)
        registry.gauge("search.heap_size").set(3)
        registry.histogram("expand.children").observe(2)
        registry.histogram("expand.children").observe(6)
        snap = registry.snapshot()
        assert snap["search.nodes_expanded"] == 5
        assert snap["search.heap_size"] == {"value": 3, "max": 10}
        hist = snap["expand.children"]
        assert hist["count"] == 2
        assert hist["sum"] == 8
        assert hist["min"] == 2 and hist["max"] == 6
        assert sum(hist["buckets"]) == 2

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b", scale=1e-6).observe(3.5e-5)
        json.dumps(registry.snapshot())

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_scale_buckets_latency(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", scale=1e-6)
        hist.observe(1e-6)   # 1 unit -> bucket 1
        hist.observe(100e-6)  # 100 units -> higher bucket
        assert hist.buckets[1] == 1
        assert sum(hist.buckets) == 2
        assert hist.mean == pytest.approx(50.5e-6)

    def test_snapshot_mid_run_then_again(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc()
        first = registry.snapshot()
        counter.inc()
        second = registry.snapshot()
        assert (first["n"], second["n"]) == (1, 2)

    def test_snapshot_order_independent_of_registration(self):
        """Equal state serializes byte-identically regardless of the
        order instruments were first touched — JSONL diffs stay stable."""
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for registry, names in (
            (forward, ["a.count", "m.gauge", "z.hist"]),
            (backward, ["z.hist", "m.gauge", "a.count"]),
        ):
            for name in names:
                if name.endswith("count"):
                    registry.counter(name).inc(2)
                elif name.endswith("gauge"):
                    registry.gauge(name).set(5)
                else:
                    registry.histogram(name).observe(3)
        assert json.dumps(forward.snapshot()) == \
            json.dumps(backward.snapshot())
        assert list(forward.snapshot()) == ["a.count", "m.gauge", "z.hist"]

    def test_nested_stat_keys_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2)
        snap = registry.snapshot()
        assert list(snap["g"]) == sorted(snap["g"])
        assert list(snap["h"]) == sorted(snap["h"])


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "span", "name": "search"})
        sink.emit({"type": "metrics", "metrics": {"n": 1}})
        sink.close()
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["span", "metrics"]
        assert records[1]["metrics"] == {"n": 1}

    def test_jsonl_flushes_per_record(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "progress", "nodes_expanded": 1})
        # readable before close — a budget-killed run keeps its trail
        assert read_jsonl(path)[0]["nodes_expanded"] == 1
        sink.close()

    def test_jsonl_serializes_sets(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "span", "attrs": {"qubits": {2, 0, 1}}})
        sink.close()
        assert read_jsonl(path)[0]["attrs"]["qubits"] == [0, 1, 2]

    def test_fanout_broadcasts_and_skips_none(self):
        a, b = MemorySink(), MemorySink()
        fan = FanoutSink(a, None, b)
        fan.emit({"type": "span"})
        assert len(a.records) == len(b.records) == 1

    def test_truncated_trailing_line_dropped(self, tmp_path):
        """A budget-killed/SIGKILLed run can tear its final write; the
        rest of the trail must stay readable by default."""
        path = tmp_path / "torn.jsonl"
        path.write_text('{"type": "span", "name": "search"}\n{"type": "me')
        records = read_jsonl(str(path))
        assert [r["name"] for r in records] == ["search"]

    def test_truncated_trailing_line_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"type": "span"}\n{"truncated": ')
        with pytest.raises(ValueError, match="truncated JSONL record") as e:
            read_jsonl(str(path), strict=True)
        assert "torn.jsonl:2" in str(e.value)  # names the bad line

    def test_corrupt_interior_line_always_raises(self, tmp_path):
        """A malformed line *followed by valid records* is corruption,
        not a torn tail — silently dropping it would hide data loss."""
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"type": "span"}\nnot json at all\n{"type": "metrics"}\n'
        )
        with pytest.raises(ValueError, match="corrupt JSONL record"):
            read_jsonl(str(path))
        with pytest.raises(ValueError, match="corrupt.jsonl:2"):
            read_jsonl(str(path), strict=True)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n\n{"b": 2}\n')
        assert read_jsonl(str(path)) == [{"a": 1}, {"b": 2}]


class TestProgressEvents:
    def test_publish_reaches_all_subscribers(self):
        publisher = ProgressPublisher()
        seen = []
        publisher.subscribe(seen.append)
        publisher.subscribe(lambda e: seen.append(e))
        publisher.publish(make_event())
        assert len(seen) == 2
        assert publisher.published == 1

    def test_unsubscribe_handle(self):
        publisher = ProgressPublisher()
        seen = []
        unsubscribe = publisher.subscribe(seen.append)
        unsubscribe()
        unsubscribe()  # idempotent
        publisher.publish(make_event())
        assert seen == []

    def test_broken_subscriber_cannot_kill_the_run(self):
        publisher = ProgressPublisher()
        seen = []

        def broken(_event):
            raise RuntimeError("consumer bug")

        publisher.subscribe(broken)
        publisher.subscribe(seen.append)
        publisher.publish(make_event())
        assert len(seen) == 1

    def test_event_record_and_str(self):
        event = make_event(expanded=50, queue_trims=2)
        record = event.to_record()
        assert record["type"] == "progress"
        assert record["nodes_expanded"] == 50
        assert record["queue_trims"] == 2
        assert "[toqm-optimal:search]" in str(event)
        assert "expanded=50" in str(event)

    def test_cadence_every_n_expansions(self):
        """The telemetry contract: one event per `progress_every` batch."""
        telemetry = Telemetry(progress_every=10)
        seen = []
        telemetry.progress.subscribe(seen.append)
        for expanded in range(1, 101):
            if expanded % telemetry.progress_every == 0:
                telemetry.publish_progress(make_event(expanded=expanded))
        assert [e.nodes_expanded for e in seen] == list(range(10, 101, 10))


class TestTelemetry:
    def test_disabled_is_null(self):
        telemetry = Telemetry.disabled()
        assert telemetry.enabled is False
        assert telemetry.tracer is NULL_TRACER
        assert resolve(None) is NULL_TELEMETRY
        assert resolve(telemetry) is telemetry

    def test_progress_events_reach_sink(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        telemetry.publish_progress(make_event())
        assert sink.of_type("progress")[0]["best_f"] == 42

    def test_finish_emits_final_snapshot_once(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        telemetry.metrics.counter("n").inc(3)
        record = telemetry.finish()
        assert record["label"] == "final"
        assert record["metrics"]["n"] == 3
        assert telemetry.finish() is None  # idempotent
        assert len(sink.of_type("metrics")) == 1

    def test_to_jsonl_interleaves_record_types(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        telemetry = Telemetry.to_jsonl(path, progress_every=1)
        with telemetry.tracer.span("search"):
            pass
        telemetry.publish_progress(make_event())
        telemetry.metrics.counter("n").inc()
        telemetry.finish()
        types = [r["type"] for r in read_jsonl(path)]
        assert types == ["span", "progress", "metrics"]

    def test_progress_every_clamped_to_one(self):
        assert Telemetry(progress_every=0).progress_every == 1

    def test_resolve_flag_combinations(self):
        """Every `resolve` outcome a mapper can see: None → the shared
        disabled singleton; disabled instances keep their flag; enabled
        instances pass through regardless of which features are wired."""
        assert resolve(None) is NULL_TELEMETRY
        assert resolve(None).enabled is False

        bare = Telemetry()
        assert resolve(bare) is bare and bare.enabled
        assert bare.tracer is NULL_TRACER  # trace off by default
        assert bare.search_trace is None

        spans_only = Telemetry(trace=True)
        assert resolve(spans_only).tracer is not NULL_TRACER

        from repro.obs import TraceRecorder

        trace_only = Telemetry(search_trace=TraceRecorder())
        resolved = resolve(trace_only)
        assert resolved.enabled
        assert resolved.search_trace is trace_only.search_trace
        assert resolved.tracer is NULL_TRACER

        disabled = Telemetry.disabled()
        assert resolve(disabled) is disabled
        assert resolve(disabled).enabled is False

    def test_finish_closes_search_trace(self, tmp_path):
        from repro.obs import JsonlSink, TraceRecorder

        path = str(tmp_path / "trace.jsonl")
        recorder = TraceRecorder(sink=JsonlSink(path), mode="ring",
                                 ring_size=4)
        telemetry = Telemetry(search_trace=recorder)
        recorder.summary({})
        telemetry.finish()  # must flush the ring through the sink
        assert read_jsonl(path)[-1]["ev"] == "summary"

    def test_disabled_finish_is_a_no_op(self):
        telemetry = Telemetry.disabled()
        assert telemetry.finish() is None
