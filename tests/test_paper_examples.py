"""End-to-end reproductions of the paper's in-text examples and claims."""

import pytest

from repro.arch import CouplingGraph, grid, lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper
from repro.verify import validate_result


class TestFig1:
    """Fig. 1: the gate-optimal vs time-optimal motivating example.

    Hardware: the 4-qubit 'T' coupling of Fig. 1(a) — Q1 is linked to Q2
    and Q3; Q2 is additionally linked to Q4.  Circuit (b): h(q1);
    cx(q1, q4); cx(q2, q3).  Both fixes insert one SWAP, but swapping
    (Q1, Q2) delays the cx(q2, q3) chain while swapping (Q2, Q4) does not.
    """

    def arch(self):
        # 0=Q1, 1=Q2, 2=Q3, 3=Q4
        return CouplingGraph(4, [(0, 1), (0, 2), (1, 3)], name="fig1")

    def test_circuit_not_directly_executable(self, fig1_circuit):
        arch = self.arch()
        assert not arch.are_adjacent(0, 3)  # q1, q4 start on Q1, Q4

    def test_optimal_solution_avoids_busy_qubit(self, fig1_circuit):
        latency = uniform_latency(1, 3)
        result = OptimalMapper(self.arch(), latency).map(
            fig1_circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(result)
        # Time-optimal choice: swap (Q2, Q4) concurrently with h(q1) and
        # cx(q2,q3)... cx(q2,q3) runs on (Q2,Q3) via Q1? q2 on Q2, q3 on
        # Q3 are NOT adjacent in this T; the point preserved from Fig. 1
        # is simply that the mapper finds the minimal-depth repair:
        assert result.num_inserted_swaps >= 1
        reference_bad = 3 + 2 + 2  # serialize swap after h before cx
        assert result.depth < reference_bad + 3

    def test_gate_optimal_is_not_time_optimal(self):
        """Direct reconstruction of Fig. 1(c) vs 1(d) on a path graph.

        On Q1—Q2—Q4 with q1,q2,q4 at Q1,Q2,Q4 and circuit
        h(q1); cx(q1,q4); cx(q2,x)... the essence: one of two single-SWAP
        repairs overlaps the SWAP with the Hadamard, the other can't.
        """
        arch = CouplingGraph(4, [(0, 1), (1, 3), (0, 2)], name="fig1-line")
        circuit = Circuit(4)
        circuit.h(0)          # long-ish single-qubit work on q1
        circuit.h(0)
        circuit.h(0)
        circuit.cx(0, 3)      # q1 with q4 (distance 2)
        latency = uniform_latency(1, 3)
        result = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(result)
        # Swapping q4 toward q1 (edge Q2,Q4) overlaps with the Hadamards:
        # depth = max(3 h-cycles, 3 swap-cycles) + 2... with unit cx = 1:
        assert result.depth == 4
        swap_ops = [op for op in result.ops if op.is_inserted_swap]
        assert len(swap_ops) == 1
        assert swap_ops[0].start == 0  # concurrent with the Hadamards
        assert tuple(sorted(swap_ops[0].physical_qubits)) == (1, 3)


class TestSection3Claims:
    def test_qft6_lnn_optimal_depth_17(self):
        """§3/§6.1.1: the solver finds the 17-cycle QFT-6 LNN solution."""
        result = OptimalMapper(lnn(6), uniform_latency(1, 1)).map(
            qft_skeleton(6), initial_mapping=list(range(6))
        )
        validate_result(result)
        assert result.depth == 17

    def test_qft_needs_swaps_on_lnn_regardless_of_mapping(self):
        """§3: no initial mapping makes QFT-4 run swap-free on LNN."""
        import itertools

        for perm in itertools.permutations(range(4)):
            result = OptimalMapper(lnn(4), uniform_latency(1, 1)).map(
                qft_skeleton(4), initial_mapping=list(perm)
            )
            assert result.num_inserted_swaps > 0

    @pytest.mark.slow
    def test_qft8_2x4_optimal_depth_17(self):
        """§6.1.1/Fig. 12 headline: QFT-8 on 2×4 in 17 cycles (slow: ~1 min)."""
        result = OptimalMapper(grid(2, 4), uniform_latency(1, 1)).map(
            qft_skeleton(8), initial_mapping=list(range(8))
        )
        validate_result(result)
        assert result.depth == 17


class TestSection53InitialMapping:
    def test_mode2_beats_bad_fixed_mapping(self):
        circuit = Circuit(4).cx(0, 3).cx(0, 3)
        latency = uniform_latency(1, 3)
        arch = lnn(4)
        fixed = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        searched = OptimalMapper(arch, latency, search_initial_mapping=True).map(
            circuit
        )
        validate_result(searched)
        assert searched.depth < fixed.depth
        assert searched.num_inserted_swaps == 0

    def test_swap_free_fast_path_finds_embedding(self):
        # A line circuit embeds into qx2 directly.
        from repro.arch import ibm_qx2
        from repro.circuit.generators import ghz_circuit

        circuit = ghz_circuit(5)
        result = OptimalMapper(
            ibm_qx2(), uniform_latency(1, 3), search_initial_mapping=True
        ).map(circuit)
        validate_result(result)
        assert result.num_inserted_swaps == 0
        assert result.depth == circuit.depth()
