"""Tests for the portfolio mapper (repro.analysis.portfolio).

Covers the shared-incumbent race semantics: cross-lane bound tightening,
anytime deadlines always returning checker-verified schedules, the
exhaustion promotion to a proven optimum, per-lane error containment,
and the normalized stats schema.
"""

import pytest

from repro.analysis.batch import SharedBound
from repro.analysis.portfolio import (
    LANE_EXACT,
    LANE_HEURISTIC,
    LANE_ORDER,
    LANE_SABRE,
    PortfolioMapper,
)
from repro.arch import lnn
from repro.baselines.sabre import SabreMapper
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper
from repro.obs.schema import validate_stats
from repro.verify import validate_result

LAT = uniform_latency(1, 3)


def test_shared_bound_is_monotone_min():
    shared = SharedBound()
    assert shared.peek() is None
    assert shared.offer(10)
    assert shared.peek() == 10
    assert not shared.offer(12)
    assert shared.peek() == 10
    assert shared.offer(7)
    assert shared.peek() == 7


def test_full_race_reaches_proven_optimum():
    reference = OptimalMapper(
        lnn(4), LAT, search_initial_mapping=True
    ).map(qft_skeleton(4))
    result = PortfolioMapper(lnn(4), LAT).map(qft_skeleton(4))
    validate_result(result)
    assert result.optimal
    assert result.depth == reference.depth
    stats = result.stats
    validate_stats(stats)
    assert stats["mapper"] == "portfolio"
    assert stats["lanes_finished"] >= len(LANE_ORDER)
    assert stats["winner_lane"] in LANE_ORDER + ("seed",)
    assert stats["lane_depths"][stats["winner_lane"]] == result.depth


def test_cross_lane_bound_tightens_exact_search():
    """The held seed's shared offer must prune the exact lane.

    Bounds are ablated so the comparison isolates the incumbent protocol:
    the unseeded exact search is the worst case, and the portfolio's
    exact lane — fed the seed depth through the shared bound before it
    starts — must beat it.
    """
    circuit = qft_skeleton(5)
    unseeded = OptimalMapper(
        lnn(5), LAT, search_initial_mapping=True, seed_incumbent=False
    ).map(circuit)
    raced = PortfolioMapper(
        lnn(5),
        LAT,
        lanes=(LANE_EXACT, LANE_HEURISTIC),
        assignment_bound=False,
        layer_bound=False,
        root_restriction=False,
        closed_dominance=False,
    ).map(circuit)
    validate_result(raced)
    assert raced.depth == unseeded.depth
    assert raced.stats["nodes_expanded"] <= unseeded.stats["nodes_expanded"]
    # The foreign bound prunes generated nodes from the first expansion;
    # the unseeded search only starts pruning after its own terminal.
    assert (
        raced.stats["pruned_by_bound"]
        > unseeded.stats["pruned_by_bound"]
    )


def test_deadline_always_returns_verified_schedule():
    """An expiring deadline yields the best validated lane schedule."""
    result = PortfolioMapper(
        lnn(6), LAT, deadline=0.2
    ).map(qft_skeleton(6))
    validate_result(result)
    assert result.depth >= 1
    stats = result.stats
    validate_stats(stats)
    assert stats["winner_lane"] is not None
    if not result.optimal:
        assert stats["budget_reason"] is not None


def test_exhaustion_promotion_proves_side_lane_optimal():
    """Exact lane drains against the seed's own depth => promoted proof."""
    reference = OptimalMapper(
        lnn(3), LAT, search_initial_mapping=True
    ).map(qft_skeleton(3))
    result = PortfolioMapper(lnn(3), LAT).map(qft_skeleton(3))
    validate_result(result)
    assert result.optimal
    assert result.depth == reference.depth
    # The proof came from the drained queue, not an exact-lane terminal.
    assert result.stats["winner_lane"] != LANE_EXACT
    assert "exact" in result.stats.get("lane_errors", {})


def test_lane_error_is_contained(monkeypatch):
    def boom(self, circuit, initial_mapping=None):
        raise RuntimeError("sabre lane exploded")

    monkeypatch.setattr(SabreMapper, "map", boom)
    result = PortfolioMapper(
        lnn(4), LAT, lanes=(LANE_EXACT, LANE_SABRE)
    ).map(qft_skeleton(4))
    validate_result(result)
    assert result.optimal
    assert "sabre lane exploded" in result.stats["lane_errors"][LANE_SABRE]


def test_lane_validation_is_rejected():
    with pytest.raises(ValueError, match="unknown portfolio lane"):
        PortfolioMapper(lnn(3), LAT, lanes=("exact", "quantum"))
    with pytest.raises(ValueError, match="at least one lane"):
        PortfolioMapper(lnn(3), LAT, lanes=())


def test_exact_lane_counters_are_hoisted():
    """Portfolio stats read like exact-run stats for diagnose/bench."""
    result = PortfolioMapper(lnn(5), LAT).map(qft_skeleton(5))
    stats = result.stats
    assert stats["nodes_expanded"] > 0
    assert stats["closed_dominated"] > 0
    assert stats["root_candidates_restricted"] > 0
    assert "budget_reason" not in stats  # proof supersedes the lane's tag
