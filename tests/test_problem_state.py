"""Unit tests for MappingProblem preprocessing and SearchNode mechanics."""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.problem import MappingProblem
from repro.core.state import K_GATE, K_SWAP, SearchNode

from .test_heuristic import make_node


def sample_problem():
    circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
    return MappingProblem(circuit, lnn(4), uniform_latency(1, 3))


class TestMappingProblem:
    def test_rejects_too_many_logicals(self):
        with pytest.raises(ValueError):
            MappingProblem(Circuit(5).cx(0, 1), lnn(3))

    def test_per_qubit_sequences(self):
        problem = sample_problem()
        assert problem.seq[0] == [0, 1]
        assert problem.seq[1] == [1, 2]
        assert problem.seq[2] == [2]

    def test_gate_positions(self):
        problem = sample_problem()
        assert problem.gate_pos[1] == {0: 1, 1: 0}

    def test_latencies_precomputed(self):
        problem = sample_problem()
        assert problem.gate_latency == (1, 1, 1)
        assert problem.swap_len == 3

    def test_suffix_load_is_remaining_latency(self):
        problem = sample_problem()
        # qubit 0: gates h (1) + cx (1) => suffix [2, 1, 0]
        assert problem.suffix_load[0] == [2, 1, 0]
        assert problem.suffix_load[2] == [1, 0]

    def test_is_gate_started(self):
        problem = sample_problem()
        assert not problem.is_gate_started(0, (0, 0, 0))
        assert problem.is_gate_started(0, (1, 0, 0))

    def test_ideal_depth_and_trivial_mapping(self):
        problem = sample_problem()
        assert problem.ideal_depth() == 3
        assert problem.trivial_mapping() == (0, 1, 2)


class TestSearchNode:
    def test_terminal_detection(self):
        problem = sample_problem()
        done = make_node(problem, time=3, ptr=[2, 2, 1], started=3)
        assert done.is_terminal(problem.num_gates)
        busy = make_node(
            problem, time=3, ptr=[2, 2, 1], started=3,
            inflight=((5, K_GATE, 2, 0),),
        )
        assert not busy.is_terminal(problem.num_gates)
        partial = make_node(problem, time=3, ptr=[2, 1, 0], started=2)
        assert not partial.is_terminal(problem.num_gates)

    def test_busy_physical_resolves_gate_operands(self):
        problem = sample_problem()
        node = make_node(
            problem, mapping=(2, 1, 0), ptr=[1, 1, 0], started=1,
            inflight=((2, K_GATE, 1, 0),),  # cx(q0,q1) at Q2,Q1
        )
        assert node.busy_physical(problem.gate_qubits) == {1, 2}

    def test_busy_physical_includes_swaps(self):
        problem = sample_problem()
        node = make_node(problem, inflight=((3, K_SWAP, 2, 3),))
        assert node.busy_physical(problem.gate_qubits) == {2, 3}

    def test_mapping_after_swaps(self):
        problem = sample_problem()
        node = make_node(problem, inflight=((3, K_SWAP, 0, 1),))
        pos, inv = node.mapping_after_swaps()
        assert pos[0] == 1 and pos[1] == 0
        assert inv[0] == 1 and inv[1] == 0
        # The node's own mapping is untouched (effect is hypothetical).
        assert node.pos[0] == 0

    def test_mapping_after_swaps_with_free_qubit(self):
        problem = sample_problem()  # 3 logicals on 4 physicals
        node = make_node(problem, inflight=((3, K_SWAP, 2, 3),))
        pos, inv = node.mapping_after_swaps()
        assert pos[2] == 3
        assert inv[2] == -1 and inv[3] == 2

    def test_filter_key_distinguishes_progress(self):
        problem = sample_problem()
        a = make_node(problem)
        b = make_node(problem, ptr=[1, 0, 0], started=1)
        assert a.filter_key() != b.filter_key()

    def test_path_actions_from_root(self):
        problem = sample_problem()
        root = make_node(problem)
        child = SearchNode(
            time=1, pos=root.pos, inv=root.inv, ptr=(1, 0, 0), started=1,
            inflight=(), last_swaps=frozenset(), prev_startable=frozenset(),
            parent=root, actions=(("g", 0),),
        )
        grandchild = SearchNode(
            time=2, pos=root.pos, inv=root.inv, ptr=(2, 1, 0), started=2,
            inflight=(), last_swaps=frozenset(), prev_startable=frozenset(),
            parent=child, actions=(("g", 1),),
        )
        trail = list(grandchild.path_actions())
        assert [(t, a) for t, a, _ in trail] == [
            (0, (("g", 0),)),
            (1, (("g", 1),)),
        ]

    def test_repr_mentions_prefix(self):
        problem = sample_problem()
        node = make_node(problem)
        node.prefix_layers = 2
        assert "prefix" in repr(node)
