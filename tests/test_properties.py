"""Property-based tests (hypothesis) on core invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.arch import CouplingGraph, grid, lnn
from repro.baselines import SabreMapper, TrivialMapper, ZulehnerMapper
from repro.circuit import Circuit, parse_qasm, to_qasm, uniform_latency
from repro.circuit.dag import DependencyGraph
from repro.core import HeuristicMapper, OptimalMapper
from repro.core.heuristic import heuristic_cost
from repro.core.problem import MappingProblem
from repro.verify import validate_result

from .test_heuristic import make_node

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def circuits(draw, max_qubits=5, max_gates=10):
    """Random small circuits over 2..max_qubits qubits."""
    n = draw(st.integers(2, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    circuit = Circuit(n)
    for _ in range(num_gates):
        if draw(st.booleans()):
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            circuit.cx(a, b)
        else:
            circuit.h(draw(st.integers(0, n - 1)))
    return circuit


@st.composite
def latencies(draw):
    gate = draw(st.integers(1, 3))
    swap_cycles = draw(st.integers(1, 6))
    return uniform_latency(gate, swap_cycles)


# ---------------------------------------------------------------------------
# Circuit / DAG invariants
# ---------------------------------------------------------------------------


@given(circuits())
def test_depth_bounds(circuit):
    depth = circuit.depth()
    assert 0 <= depth <= len(circuit)
    if circuit.gates:
        longest_qubit = max(
            sum(1 for g in circuit if q in g.qubits)
            for q in range(circuit.num_qubits)
        )
        assert depth >= longest_qubit


@given(circuits())
def test_dag_preds_are_earlier_gates(circuit):
    dag = DependencyGraph(circuit)
    for gate, preds in enumerate(dag.preds):
        for pred in preds:
            assert pred < gate


@given(circuits())
def test_parallel_layers_partition_all_gates(circuit):
    layers = circuit.parallel_layers()
    flattened = sorted(i for layer in layers for i in layer)
    assert flattened == list(range(len(circuit)))
    # No layer reuses a qubit.
    for layer in layers:
        used = set()
        for index in layer:
            for q in circuit[index].qubits:
                assert q not in used
                used.add(q)


@given(circuits())
def test_qasm_round_trip(circuit):
    back = parse_qasm(to_qasm(circuit))
    assert back.num_qubits == circuit.num_qubits
    assert len(back) == len(circuit)
    assert [g.qubits for g in back] == [g.qubits for g in circuit]


@given(circuits(), st.randoms())
def test_relabeling_preserves_depth(circuit, rng):
    permutation = list(range(circuit.num_qubits))
    rng.shuffle(permutation)
    assert circuit.relabeled(permutation).depth() == circuit.depth()


# ---------------------------------------------------------------------------
# Heuristic invariants
# ---------------------------------------------------------------------------


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=4, max_gates=6), latencies())
def test_heuristic_admissible(circuit, latency):
    """h(root) never exceeds the exhaustively-computed optimal depth."""
    arch = lnn(circuit.num_qubits)
    problem = MappingProblem(circuit, arch, latency)
    h = heuristic_cost(problem, make_node(problem))
    exact = OptimalMapper(arch, latency, informed=False, dominance=False).map(
        circuit, initial_mapping=list(range(circuit.num_qubits))
    )
    assert h <= exact.depth


@given(circuits(max_qubits=5, max_gates=10), latencies())
def test_heuristic_at_least_critical_path(circuit, latency):
    arch = lnn(circuit.num_qubits)
    problem = MappingProblem(circuit, arch, latency)
    node = make_node(problem)
    assert heuristic_cost(problem, node) >= heuristic_cost(
        problem, node, swap_aware=False
    )
    assert heuristic_cost(problem, node, swap_aware=False) == circuit.depth(
        latency
    )


# ---------------------------------------------------------------------------
# Mapper invariants: every mapper yields a valid schedule, depth >= ideal
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=4, max_gates=8), latencies())
def test_optimal_mapper_valid_and_bounded(circuit, latency):
    arch = lnn(circuit.num_qubits)
    result = OptimalMapper(arch, latency).map(
        circuit, initial_mapping=list(range(circuit.num_qubits))
    )
    validate_result(result)
    assert result.depth >= circuit.depth(latency)


@settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=5, max_gates=12), latencies())
def test_heuristic_mapper_valid(circuit, latency):
    arch = grid(2, 3)
    result = HeuristicMapper(arch, latency).map(circuit)
    validate_result(result)


@settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=5, max_gates=12), latencies(), st.integers(0, 3))
def test_baselines_valid(circuit, latency, seed):
    arch = grid(2, 3)
    for mapper in (
        SabreMapper(arch, latency, seed=seed),
        ZulehnerMapper(arch, latency),
        TrivialMapper(arch, latency),
    ):
        result = mapper.map(circuit)
        validate_result(result)


@settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=4, max_gates=6), latencies())
def test_heuristic_never_beats_optimal(circuit, latency):
    arch = lnn(circuit.num_qubits)
    mapping = list(range(circuit.num_qubits))
    optimal = OptimalMapper(arch, latency).map(circuit, initial_mapping=mapping)
    heuristic = HeuristicMapper(arch, latency).map(circuit, initial_mapping=mapping)
    assert heuristic.depth >= optimal.depth


# ---------------------------------------------------------------------------
# Coupling-graph invariants
# ---------------------------------------------------------------------------


@given(st.integers(2, 9))
def test_lnn_distances_are_index_differences(n):
    g = lnn(n)
    for p in range(n):
        for q in range(n):
            assert g.distance(p, q) == abs(p - q)


@given(st.integers(1, 4), st.integers(1, 4))
def test_grid_distance_is_manhattan(rows, cols):
    if rows * cols < 2:
        return
    g = grid(rows, cols)
    for p in range(rows * cols):
        for q in range(rows * cols):
            (r1, c1), (r2, c2) = (p % rows, p // rows), (q % rows, q // rows)
            assert g.distance(p, q) == abs(r1 - r2) + abs(c1 - c2)


# ---------------------------------------------------------------------------
# Semantic equivalence: mapping preserves circuit meaning
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=4, max_gates=10), latencies())
def test_optimal_mapping_semantically_equivalent(circuit, latency):
    from repro.verify import assert_semantically_equivalent

    arch = lnn(circuit.num_qubits)
    result = OptimalMapper(arch, latency).map(
        circuit, initial_mapping=list(range(circuit.num_qubits))
    )
    assert_semantically_equivalent(result)


@settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(circuits(max_qubits=5, max_gates=12), st.integers(0, 2))
def test_heuristic_mapping_semantically_equivalent(circuit, seed):
    from repro.verify import assert_semantically_equivalent

    arch = grid(2, 3)
    result = HeuristicMapper(arch, uniform_latency(1, 3)).map(circuit)
    assert_semantically_equivalent(result)
