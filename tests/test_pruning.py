"""Tests of the branch-and-bound / search-space-reduction layer.

Three kinds of guarantee:

* **Loss-freeness** — the reductions (incumbent upper bound,
  active-SWAP candidate restriction, mode-2 symmetry quotient) must
  return bit-identical optimal depths to the unreduced search on random
  circuits over LNN and 2×N grids, and must leave the
  ``find_all_optimal`` solution *sets* untouched (the reductions that
  would trim solutions are forced off there).
* **Fan-out equivalence** — the parallel mode-2 root fan-out
  (sequential and pooled) reproduces the serial mode-2 optimum.
* **Budget/anytime semantics** — ``SearchBudgetExceeded.partial_stats``
  aggregates counters across every fan-out root searched so far, and an
  expired ``deadline`` hands back the incumbent with ``optimal=False``.
"""

import random

import pytest

from repro.analysis.batch import SharedBound, map_mode2_fanout
from repro.arch import grid, lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import (
    qft_skeleton,
    queko_circuit,
    random_circuit,
)
from repro.core import OptimalMapper, SearchBudgetExceeded
from repro.core.astar import enumerate_mode2_mappings
from repro.core.problem import MappingProblem
from repro.verify import validate_result

UNPRUNED = dict(prune_swaps=False, seed_incumbent=False,
                reduce_symmetry=False)


def _random_two_qubit_circuit(num_qubits, num_gates, rng):
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        a, b = rng.sample(range(num_qubits), 2)
        circuit.cx(a, b)
    return circuit


def _solution_key(results):
    return sorted(
        (
            r.depth,
            r.initial_mapping,
            tuple((o.name, o.physical_qubits, o.start) for o in r.ops),
        )
        for r in results
    )


ARCHS = [lnn(4), grid(2, 2), lnn(5), grid(2, 3)]


class TestLossFreeReductions:
    @pytest.mark.parametrize("seed", range(8))
    def test_mode1_depths_bit_identical(self, seed):
        rng = random.Random(seed)
        arch = ARCHS[seed % len(ARCHS)]
        circuit = _random_two_qubit_circuit(4, rng.randint(3, 7), rng)
        latency = uniform_latency(1, 3)
        mapping = list(range(4))
        plain = OptimalMapper(arch, latency, **UNPRUNED).map(
            circuit, initial_mapping=mapping
        )
        pruned = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=mapping
        )
        validate_result(pruned)
        assert pruned.depth == plain.depth
        assert pruned.optimal

    @pytest.mark.parametrize("seed", range(8))
    def test_mode2_depths_bit_identical(self, seed):
        rng = random.Random(100 + seed)
        arch = ARCHS[seed % len(ARCHS)]
        circuit = _random_two_qubit_circuit(4, rng.randint(3, 6), rng)
        latency = uniform_latency(1, 3)
        plain = OptimalMapper(
            arch, latency, search_initial_mapping=True, **UNPRUNED
        ).map(circuit)
        pruned = OptimalMapper(
            arch, latency, search_initial_mapping=True
        ).map(circuit)
        validate_result(pruned)
        assert pruned.depth == plain.depth
        assert pruned.optimal

    @pytest.mark.parametrize("seed", range(6))
    def test_find_all_solution_sets_identical(self, seed):
        rng = random.Random(200 + seed)
        arch = ARCHS[seed % len(ARCHS)]
        circuit = _random_two_qubit_circuit(4, rng.randint(3, 5), rng)
        latency = uniform_latency(1, 3)
        plain = OptimalMapper(
            arch, latency, search_initial_mapping=True, **UNPRUNED
        ).find_all_optimal(circuit, max_solutions=32)
        pruned = OptimalMapper(
            arch, latency, search_initial_mapping=True
        ).find_all_optimal(circuit, max_solutions=32)
        assert _solution_key(pruned) == _solution_key(plain)

    def test_incumbent_at_ideal_depth_is_instant_certificate(self):
        """Regression: when the seeded incumbent already reaches the
        all-to-all critical path (routine for QUEKO via the swap-free
        fast path), mode 2 must return it as proven optimal immediately
        instead of grinding the whole initial-mapping space to certify
        it (this hung on 16-qubit Aspen-4 before the ``ideal_lb``
        prefix prune)."""
        arch = grid(2, 3)
        circuit = queko_circuit(arch, depth=8, seed=5)
        result = OptimalMapper(
            arch, uniform_latency(1, 3), search_initial_mapping=True
        ).map(circuit)
        validate_result(result)
        assert result.optimal
        assert result.depth == circuit.depth(uniform_latency(1, 3))
        assert result.stats["nodes_expanded"] == 0
        assert result.stats["incumbent_depth"] == result.depth

    def test_reductions_cut_mode2_expansions_on_qft(self):
        """The headline effect: fewer expanded nodes at identical depth."""
        latency = uniform_latency(1, 3)
        circuit = qft_skeleton(5)
        plain = OptimalMapper(
            lnn(5), latency, search_initial_mapping=True, **UNPRUNED
        ).map(circuit)
        pruned = OptimalMapper(
            lnn(5), latency, search_initial_mapping=True
        ).map(circuit)
        assert pruned.depth == plain.depth
        assert (
            pruned.stats["nodes_expanded"] < plain.stats["nodes_expanded"]
        )
        assert pruned.stats["symmetry_pruned"] > 0
        assert pruned.stats["incumbent_depth"] == pruned.depth


class TestSymmetryQuotient:
    def test_line_and_grid_automorphism_counts(self):
        auts5 = lnn(5).automorphisms()
        assert (4, 3, 2, 1, 0) in auts5
        assert auts5[0] == (0, 1, 2, 3, 4)
        assert len(grid(2, 3).automorphisms()) == 4

    def test_enumeration_quotient_is_orbit_exact(self):
        problem = MappingProblem(
            qft_skeleton(4), lnn(4), uniform_latency(1, 3)
        )
        full = enumerate_mode2_mappings(problem)
        counters = {}
        reduced = enumerate_mode2_mappings(
            problem, reduce_symmetry=True, counters=counters
        )
        assert len(reduced) < len(full)
        assert counters["symmetry_pruned"] > 0
        # Every dropped mapping has an automorphic representative kept.
        auts = lnn(4).automorphisms()
        canon = lambda m: min(tuple(pi[p] for p in m) for pi in auts)
        assert {canon(m) for m in full} == {canon(m) for m in reduced}

    def test_find_all_keeps_symmetric_solutions(self):
        """Orbit-mates are distinct schedules: find_all must keep them
        (symmetry reduction is forced off there), so the solution set of
        this fully symmetric instance is closed under every coupling
        automorphism."""
        latency = uniform_latency(1, 3)
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        solutions = OptimalMapper(
            grid(2, 2), latency, search_initial_mapping=True
        ).find_all_optimal(circuit, max_solutions=64)
        mappings = {s.initial_mapping for s in solutions}
        assert len(mappings) > 1
        # Orbit-mates under the rectangle reflections (all reachable
        # within the prefix cap) must all be present — a symmetry
        # quotient leaking into find_all would drop them.
        for pi in ((1, 0, 3, 2), (2, 3, 0, 1), (3, 2, 1, 0)):
            assert pi in grid(2, 2).automorphisms()
            assert {
                tuple(pi[p] for p in m) for m in mappings
            } == mappings


class TestFanout:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_fanout_matches_serial_mode2(self, workers):
        latency = uniform_latency(1, 3)
        circuit = Circuit(4).cx(0, 1).cx(2, 3).cx(0, 3).cx(1, 2).cx(0, 2)
        serial = OptimalMapper(
            grid(2, 2), latency, search_initial_mapping=True
        ).map(circuit)
        fanned = OptimalMapper(
            grid(2, 2), latency, search_initial_mapping=True,
            mode2_workers=workers,
        ).map(circuit)
        validate_result(fanned)
        assert fanned.depth == serial.depth
        assert fanned.optimal
        assert fanned.stats["mode2_roots"] >= 1
        assert fanned.stats["mode2_workers"] == workers

    def test_partial_stats_aggregate_across_roots(self):
        """Regression: a tripped budget reports counters summed over every
        fan-out root searched so far, not just the last one."""
        latency = uniform_latency(1, 3)
        circuit = qft_skeleton(4)
        mapper = OptimalMapper(
            lnn(4), latency, search_initial_mapping=True,
            mode2_workers=1, max_nodes=100, seed_incumbent=False,
        )
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            mapper.map(circuit)
        stats = excinfo.value.partial_stats
        # Several roots complete before the cumulative budget trips, so
        # a per-root (non-aggregated) report could never reach the full
        # budget's worth of expansions.
        assert stats["mode2_roots_searched"] >= 2
        assert stats["nodes_expanded"] == 100
        assert stats["nodes_generated"] > stats["nodes_expanded"]
        assert stats["budget_reason"] == "max_nodes"

    def test_shared_bound_monotone_min(self):
        bound = SharedBound()
        assert bound.peek() is None
        assert bound.offer(30)
        assert not bound.offer(31)
        assert bound.offer(22)
        assert bound.peek() == 22


class TestAnytimeDeadline:
    def test_expired_deadline_returns_incumbent(self):
        latency = uniform_latency(1, 3)
        circuit = qft_skeleton(6)
        mapper = OptimalMapper(lnn(6), latency, deadline=0.0)
        result = mapper.map(circuit, initial_mapping=list(range(6)))
        validate_result(result)
        assert not result.optimal
        assert result.stats["budget_reason"] == "deadline"
        assert result.stats["incumbent_depth"] == result.depth

    def test_deadline_with_no_incumbent_raises(self):
        latency = uniform_latency(1, 3)
        circuit = qft_skeleton(5)
        mapper = OptimalMapper(
            lnn(5), latency, deadline=0.0, seed_incumbent=False
        )
        with pytest.raises(SearchBudgetExceeded):
            mapper.map(circuit, initial_mapping=list(range(5)))
