"""Unit tests for the OpenQASM 2.0 reader/writer."""

import math

import pytest

from repro.circuit import Circuit, parse_qasm, to_qasm
from repro.circuit.qasm import QasmError

SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
barrier q[0],q[1];
cx q[1],q[2];
measure q[0] -> c[0];
"""


class TestParsing:
    def test_basic_parse(self):
        circuit = parse_qasm(SAMPLE)
        assert circuit.num_qubits == 3
        assert [g.name for g in circuit] == ["h", "cx", "rz", "cx"]

    def test_parameter_evaluation(self):
        circuit = parse_qasm(SAMPLE)
        assert circuit[2].params[0] == pytest.approx(math.pi / 4)

    def test_comments_stripped(self):
        circuit = parse_qasm("qreg q[1];\n// a comment\nh q[0]; // trailing")
        assert len(circuit) == 1

    def test_multiple_registers_flattened(self):
        text = "qreg a[2]; qreg b[2]; cx a[1],b[0];"
        circuit = parse_qasm(text)
        assert circuit.num_qubits == 4
        assert circuit[0].qubits == (1, 2)

    def test_negative_and_compound_params(self):
        circuit = parse_qasm("qreg q[1]; rz(-3*pi/8) q[0];")
        assert circuit[0].params[0] == pytest.approx(-3 * math.pi / 8)

    def test_unknown_register_raises(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; h r[0];")

    def test_missing_qreg_raises(self):
        with pytest.raises(QasmError):
            parse_qasm("h q[0];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1]; rz(__import__) q[0];")


class TestRoundTrip:
    def test_write_then_parse(self):
        circuit = Circuit(3).h(0).cx(0, 1).rz(2, 0.75).cx(1, 2)
        back = parse_qasm(to_qasm(circuit))
        assert back.num_qubits == 3
        assert [g.name for g in back] == [g.name for g in circuit]
        assert [g.qubits for g in back] == [g.qubits for g in circuit]
        assert back[2].params[0] == pytest.approx(0.75)

    def test_gt_emitted_as_cz(self):
        circuit = Circuit(2).gt(0, 1)
        text = to_qasm(circuit)
        assert "cz q[0],q[1];" in text
        back = parse_qasm(text)
        assert back[0].name == "cz"

    def test_header_present(self):
        text = to_qasm(Circuit(1).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
