"""Tests for the QFT step-schedule assembly helpers."""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit
from repro.circuit.generators import qft_skeleton
from repro.qft.common import gate_lookup, result_from_steps
from repro.verify import validate_result


class TestGateLookup:
    def test_maps_every_pair(self):
        table = gate_lookup(qft_skeleton(5))
        assert len(table) == 10
        assert all(a < b for a, b in table)

    def test_rejects_duplicate_pairs(self):
        circuit = Circuit(2).gt(0, 1).gt(1, 0)
        with pytest.raises(ValueError, match="twice"):
            gate_lookup(circuit)


class TestResultFromSteps:
    def test_empty_steps_skipped(self):
        steps = [
            [],
            [("g", (0, 1), (0, 1))],
            [],
            [("s", (0, 1), (0, 1))],   # q1->Q0, q0->Q1
            [("g", (0, 2), (1, 2))],
            [],
            [("s", (0, 2), (1, 2))],   # q0->Q2, q2->Q1
            [("g", (1, 2), (0, 1))],
        ]
        result = result_from_steps(3, lnn(3), steps, [0, 1, 2])
        validate_result(result)
        assert result.depth == 5  # five non-empty steps, unit latency

    def test_operand_order_normalized(self):
        # The skeleton stores gt(0, 1); emitting the pair as (1, 0) with
        # matching physical order must still verify.
        steps = [
            [("g", (1, 0), (1, 0))],
            [("g", (2, 0), (2, 0))],
            [("g", (2, 1), (2, 1))],
        ]
        # distance(0,2) == 2 on lnn-3 -> use a triangle-free arch trick:
        # place q0 on Q0... simpler: use a fully connected architecture.
        from repro.arch import fully_connected

        result = result_from_steps(3, fully_connected(3), steps, [0, 1, 2])
        validate_result(result)

    def test_pattern_name_recorded(self):
        steps = [[("g", (0, 1), (0, 1))]]
        result = result_from_steps(
            2, lnn(2), steps, [0, 1], pattern_name="unit"
        )
        assert result.stats["pattern"] == "unit"

    def test_bad_step_caught_by_checker(self):
        # Claim a gate runs on non-adjacent qubits: assembly succeeds but
        # verification must fail.
        from repro.verify import VerificationError

        steps = [[("g", (0, 2), (0, 2))]]
        result = result_from_steps(3, lnn(3), steps, [0, 1, 2])
        with pytest.raises(VerificationError):
            validate_result(result)
