"""Tests for the closed-form QFT schedules (Figs. 11–14, Fig. 13)."""

import pytest

from repro.arch import grid, lnn
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper
from repro.qft import (
    qft_2xn_constrained_depth_formula,
    qft_2xn_constrained_schedule,
    qft_2xn_depth_formula,
    qft_2xn_schedule,
    qft_lnn_depth_formula,
    qft_lnn_schedule,
)
from repro.verify import validate_result


class TestLnnPattern:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8, 12, 16, 20])
    def test_valid_and_matches_formula(self, n):
        result = qft_lnn_schedule(n)
        validate_result(result)
        assert result.depth == qft_lnn_depth_formula(n)

    def test_qft6_depth_is_17(self):
        """Fig. 11: the 6-qubit butterfly runs in 17 cycles."""
        assert qft_lnn_schedule(6).depth == 17

    def test_linear_depth_scaling(self):
        """Fig. 13(a): depth grows as 4n + O(1) — strictly linear."""
        depths = [qft_lnn_schedule(n).depth for n in range(4, 16)]
        deltas = {b - a for a, b in zip(depths, depths[1:])}
        assert deltas == {4}

    def test_pattern_optimal_for_qft5_and_qft6(self):
        """The search confirms the butterfly is exactly optimal (§6.1.1)."""
        for n in (5, 6):
            search = OptimalMapper(lnn(n), uniform_latency(1, 1)).map(
                qft_skeleton(n), initial_mapping=list(range(n))
            )
            assert search.depth == qft_lnn_schedule(n).depth

    def test_search_beats_pattern_at_n4_boundary(self):
        """At n = 4 the sparse tail lets the search overlap one more cycle."""
        search = OptimalMapper(lnn(4), uniform_latency(1, 1)).map(
            qft_skeleton(4), initial_mapping=[0, 1, 2, 3]
        )
        assert search.depth == qft_lnn_schedule(4).depth - 1


class Test2xNMixed:
    @pytest.mark.parametrize("n", [4, 6, 8, 10, 14, 20])
    def test_valid_and_matches_formula(self, n):
        result = qft_2xn_schedule(n)
        validate_result(result)
        assert result.depth == qft_2xn_depth_formula(n)

    def test_qft8_on_2x4_is_17_cycles(self):
        """Fig. 12: QFT-8 on 2×4 takes exactly 17 cycles."""
        assert qft_2xn_schedule(8).depth == 17

    def test_depth_is_3n_plus_constant(self):
        """Maslov's 3n + O(1) lower bound is met (§6.1.1, 2D)."""
        for n in (6, 8, 10, 12):
            assert qft_2xn_schedule(n).depth == 3 * n - 7

    def test_pattern_optimal_for_qft6_on_2x3(self):
        search = OptimalMapper(grid(2, 3), uniform_latency(1, 1)).map(
            qft_skeleton(6), initial_mapping=list(range(6))
        )
        assert search.depth == qft_2xn_schedule(6).depth == 11

    def test_swaps_overlap_gates(self):
        """The mixed schedule runs SWAPs concurrently with GT gates."""
        result = qft_2xn_schedule(8)
        by_start = {}
        for op in result.ops:
            by_start.setdefault(op.start, set()).add(op.is_inserted_swap)
        assert any(kinds == {True, False} for kinds in by_start.values())

    def test_rejects_odd_n(self):
        with pytest.raises(ValueError):
            qft_2xn_schedule(7)


class Test2xNConstrained:
    @pytest.mark.parametrize("n", [4, 6, 8, 10, 14, 20])
    def test_valid_and_matches_formula(self, n):
        result = qft_2xn_constrained_schedule(n)
        validate_result(result)
        assert result.depth == qft_2xn_constrained_depth_formula(n)

    def test_qft8_is_19_cycles(self):
        """Fig. 14: the no-mixing schedule takes 19 cycles for QFT-8."""
        assert qft_2xn_constrained_schedule(8).depth == 19

    def test_no_cycle_mixes_swaps_and_gates(self):
        result = qft_2xn_constrained_schedule(10)
        by_start = {}
        for op in result.ops:
            by_start.setdefault(op.start, set()).add(op.is_inserted_swap)
        assert all(len(kinds) == 1 for kinds in by_start.values())

    def test_constrained_costs_two_extra_cycles(self):
        """Mixing SWAPs with gates saves exactly 2 cycles at every size."""
        for n in (6, 8, 12):
            assert (
                qft_2xn_constrained_schedule(n).depth
                - qft_2xn_schedule(n).depth
                == 2
            )


class TestCrossPattern:
    def test_2xn_beats_lnn(self):
        """The 2D architecture's extra connectivity shortens QFT (~3n vs ~4n)."""
        for n in (8, 12, 16):
            assert qft_2xn_schedule(n).depth < qft_lnn_schedule(n).depth

    def test_all_pairs_executed_once(self):
        result = qft_2xn_schedule(10)
        gates = [op for op in result.ops if not op.is_inserted_swap]
        pairs = {tuple(sorted(op.logical_qubits)) for op in gates}
        assert len(gates) == 45
        assert len(pairs) == 45
