"""Tests for schedule rendering and the all-optimal workflow."""

from repro.analysis import (
    enumerate_optimal,
    most_regular,
    regularity_score,
    render_steps,
    render_timeline,
)
from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.qft import qft_lnn_schedule


class TestRenderTimeline:
    def test_marks_gates_and_swaps(self):
        text = render_timeline(qft_lnn_schedule(4))
        assert "-G-" in text and "=S=" in text
        assert text.count("\n") == 4  # header + one row per physical qubit

    def test_busy_cells_match_schedule(self):
        result = qft_lnn_schedule(4)
        text = render_timeline(result)
        busy_cells = text.count("-G-") + text.count("=S=")
        expected = sum(2 * op.duration for op in result.ops)
        assert busy_cells == expected

    def test_truncation(self):
        text = render_timeline(qft_lnn_schedule(10), max_cycles=5)
        assert "more cycles" in text


class TestRenderSteps:
    def test_shows_layout_and_ops(self):
        text = render_steps(qft_lnn_schedule(4))
        assert text.startswith("cycle")
        assert "q0" in text and "GT(" in text and "SWAP(" in text

    def test_layout_updates_after_swap(self):
        result = qft_lnn_schedule(4)
        lines = render_steps(result).splitlines()
        first_layout = lines[0].split("|")[1].strip()
        later_layout = lines[-1].split("|")[1].strip()
        assert first_layout == "q0 q1 q2 q3"
        assert later_layout != first_layout


class TestAllOptimalWorkflow:
    def test_enumerate_and_rank(self):
        circuit = Circuit(3).cx(0, 2)
        solutions = enumerate_optimal(
            circuit, lnn(3), uniform_latency(1, 3),
            initial_mapping=[0, 1, 2], max_solutions=8,
        )
        assert len(solutions) >= 2
        best = most_regular(solutions)
        assert best in solutions

    def test_regular_solution_preferred(self):
        # For QFT-4 on LNN the butterfly-like solutions score at least as
        # high as any other optimal solution.
        circuit = qft_skeleton(4)
        solutions = enumerate_optimal(
            circuit, lnn(4), uniform_latency(1, 1),
            initial_mapping=[0, 1, 2, 3], max_solutions=24,
        )
        assert solutions
        best = most_regular(solutions)
        assert regularity_score(best) == max(
            regularity_score(s) for s in solutions
        )

    def test_most_regular_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            most_regular([])
