"""Tests for the flight-recorder runtime telemetry layer.

Covers the resource sampler (record schema, GC-pause accounting and its
interaction with ``pause_gc``), the sampling profiler (span attribution,
collapsed-stack output), the ``JsonlSink`` reopen-truncation regression,
finished-telemetry guards, fleet shard merging + rollup arithmetic, the
``obs-report`` CLI, and the flight-recorder overhead gate.
"""

import gc
import os
import time

import pytest

from repro.analysis.batch import BatchTask, map_many, map_mode2_fanout
from repro.arch import lnn
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton, random_circuit
from repro.cli import main as cli_main
from repro.core import OptimalMapper
from repro.core.gcpause import pause_gc, suspension_stats
from repro.obs import (
    GcPauseTracker,
    JsonlSink,
    MemorySink,
    ResourceSampler,
    SamplingProfiler,
    SearchProgressEvent,
    Telemetry,
    TelemetrySpec,
    read_jsonl,
)
from repro.obs.export import (
    FLEET_ROLLUP_NAME,
    fleet_rollup,
    fleet_to_prometheus,
    render_fleet_table,
    run_to_prometheus,
    summarize_run,
)

#: Every field a ``type="resource"`` record must carry.
RESOURCE_KEYS = {
    "type", "elapsed_s", "rss_bytes", "peak_rss_bytes", "cpu_user_s",
    "cpu_sys_s", "gc_counts", "gc_collections", "gc_pause_s",
    "gc_pause_max_s", "gc_windows", "gc_suspended_s",
}


def _spin(seconds: float) -> int:
    """Busy loop that keeps the thread on-CPU (samplable)."""
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestResourceSampler:
    def test_record_schema_and_monotonicity(self):
        sink = MemorySink()
        with ResourceSampler(sink=sink, interval=0.01):
            _spin(0.06)
        records = sink.of_type("resource")
        assert len(records) >= 2  # several ticks plus the final record
        for record in records:
            assert RESOURCE_KEYS <= set(record)
            assert record["rss_bytes"] > 0
            assert record["peak_rss_bytes"] >= record["rss_bytes"] or (
                record["peak_rss_bytes"] > 0
            )
            assert len(record["gc_counts"]) == 3
        elapsed = [r["elapsed_s"] for r in records]
        assert elapsed == sorted(elapsed)
        peaks = [r["peak_rss_bytes"] for r in records]
        assert peaks == sorted(peaks)  # the peak gauge never regresses

    def test_summary_and_metrics_registry(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        sampler = ResourceSampler(metrics=metrics, interval=0.01)
        with sampler:
            _spin(0.05)
        summary = sampler.summary()
        assert summary["samples"] >= 1
        assert summary["peak_rss_bytes"] > 0
        assert summary["cpu_user_s"] >= 0.0
        assert "gc_collections" in summary
        snapshot = metrics.snapshot()
        assert snapshot["runtime.samples"] == sampler.samples
        assert snapshot["runtime.rss_bytes"]["value"] > 0

    def test_sink_none_keeps_records_in_memory(self):
        sampler = ResourceSampler(interval=0.01)
        with sampler:
            _spin(0.03)
        assert sampler.records
        assert sampler.records[-1]["type"] == "resource"


class TestGcPauseAccounting:
    def test_tracker_counts_explicit_collection(self):
        tracker = GcPauseTracker().install()
        try:
            gc.collect()
        finally:
            tracker.remove()
        assert tracker.collections >= 1
        assert tracker.pause_total_s >= 0.0
        assert tracker.by_generation[2] >= 1
        summary = tracker.summary()
        assert summary["gc_collections"] == tracker.collections

    def test_no_automatic_collections_inside_pause_gc(self):
        # The search suspends the cyclic collector; allocation churn that
        # would normally trip thresholds must produce zero callbacks.
        tracker = GcPauseTracker().install()
        try:
            with pause_gc():
                for _ in range(50_000):
                    _ = ([], {})
                assert tracker.collections == 0
        finally:
            tracker.remove()

    def test_suspension_window_counters(self):
        before = suspension_stats()
        with pause_gc():
            mid = suspension_stats()
            assert mid["active"]
            _spin(0.01)
        after = suspension_stats()
        assert not after["active"]
        assert after["windows"] == before["windows"] + 1
        assert after["suspended_s"] >= before["suspended_s"] + 0.01

    def test_resource_records_carry_suspension_stats(self):
        sink = MemorySink()
        with ResourceSampler(sink=sink, interval=0.005):
            with pause_gc():
                _spin(0.04)
        final = sink.of_type("resource")[-1]
        assert final["gc_windows"] >= 1
        assert final["gc_suspended_s"] > 0.0


class TestSamplingProfiler:
    def test_function_and_span_attribution(self):
        telemetry = Telemetry(trace=True)
        profiler = SamplingProfiler(
            interval=0.002, tracer=telemetry.tracer
        ).start()
        with telemetry.tracer.span("busy-span"):
            _spin(0.1)
        report = profiler.stop()
        assert report["samples"] >= 5
        assert report["functions"]  # leaf self-time table populated
        span_names = [row["name"] for row in report["spans"]]
        assert any("busy-span" in name for name in span_names)
        pcts = [row["pct"] for row in report["functions"]]
        assert all(0.0 <= pct <= 100.0 for pct in pcts)

    def test_collapsed_stack_file(self, tmp_path):
        collapsed = tmp_path / "profile.folded"
        profiler = SamplingProfiler(
            interval=0.002, collapsed_path=str(collapsed)
        ).start()
        _spin(0.08)
        report = profiler.stop()
        assert report["collapsed_path"] == str(collapsed)
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack  # root;...;leaf chains, never bare frames

    def test_profile_record_reaches_sink(self):
        sink = MemorySink()
        profiler = SamplingProfiler(interval=0.002, sink=sink).start()
        _spin(0.05)
        profiler.stop()
        records = sink.of_type("profile")
        assert len(records) == 1
        assert records[0]["samples"] == profiler.samples


class TestJsonlSinkLifecycle:
    def test_emit_after_close_appends_instead_of_truncating(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "a"})
        sink.close()
        sink.emit({"type": "b"})  # regression: used to reopen in "w"
        sink.close()
        assert [r["type"] for r in read_jsonl(path)] == ["a", "b"]

    def test_append_mode_preserves_prior_sinks_records(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        for tag in ("first", "second"):
            with JsonlSink(path, append=True) as sink:
                sink.emit({"type": tag})
        assert [r["type"] for r in read_jsonl(path)] == ["first", "second"]

    def test_fresh_sink_still_owns_a_fresh_trail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "stale"}\n')
        with JsonlSink(str(path)) as sink:
            sink.emit({"type": "new"})
        assert [r["type"] for r in read_jsonl(str(path))] == ["new"]


class TestFinishedTelemetryGuards:
    def _event(self) -> SearchProgressEvent:
        return SearchProgressEvent(
            mapper="toqm-optimal", phase="search", nodes_expanded=1,
            nodes_generated=1, heap_size=1, best_f=1, elapsed_seconds=0.0,
        )

    def test_late_emits_are_dropped_not_written(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        telemetry = Telemetry.to_jsonl(path, trace=False)
        telemetry.publish_progress(self._event())
        assert telemetry.finish() is not None
        written = len(read_jsonl(path))
        telemetry.publish_progress(self._event())
        assert telemetry.emit_metrics_snapshot() is None
        assert telemetry.dropped_after_finish == 2
        assert len(read_jsonl(path)) == written  # file untouched

    def test_finish_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        telemetry = Telemetry.to_jsonl(path, trace=False)
        assert telemetry.finish() is not None
        assert telemetry.finish() is None
        assert len(read_jsonl(path)) == 1

    def test_null_telemetry_stays_reusable(self):
        from repro.obs import NULL_TELEMETRY

        assert NULL_TELEMETRY.finish() is None
        assert not NULL_TELEMETRY.finished


def _write_shard(directory, worker, tasks):
    """Synthesize one worker shard with known arithmetic."""
    os.makedirs(directory, exist_ok=True)
    with JsonlSink(
        os.path.join(directory, f"worker-{worker}.jsonl")
    ) as sink:
        sink.emit({
            "type": "worker_meta", "worker": worker, "pid": worker,
            "started_ts": 1000.0,
        })
        for index, (seconds, nodes, rss, ok) in enumerate(tasks):
            sink.emit({
                "type": "worker_task", "worker": worker,
                "label": f"t{index}", "ok": ok, "seconds": seconds,
                "queue_wait_s": 0.5, "nodes_expanded": nodes, "depth": 10,
                "peak_rss_bytes": rss, "ts": 1000.0 + index + 1,
            })


class TestFleetRollup:
    def test_shard_merge_arithmetic(self, tmp_path):
        d = str(tmp_path)
        _write_shard(d, 111, [(2.0, 100, 50_000, True),
                              (2.0, 300, 70_000, True)])
        _write_shard(d, 222, [(4.0, 600, 90_000, False)])
        rollup = fleet_rollup(d)
        workers = {w["worker"]: w for w in rollup["workers"]}
        assert workers[111]["nodes_per_sec"] == pytest.approx(100.0)
        assert workers[111]["peak_rss_bytes"] == 70_000
        assert workers[222]["failed"] == 1
        fleet = rollup["fleet"]
        assert fleet["workers"] == 2
        assert fleet["tasks"] == 3
        assert fleet["ok"] == 2
        assert fleet["nodes_expanded"] == 1000
        assert fleet["run_s"] == pytest.approx(8.0)
        assert fleet["queue_wait_s"] == pytest.approx(1.5)
        assert fleet["nodes_per_sec"] == pytest.approx(125.0)
        assert fleet["peak_rss_bytes"] == 90_000
        # wall: earliest start 1000.0 → latest task ts 1002.0
        assert fleet["wall_s"] == pytest.approx(2.0)
        assert fleet["circuits_per_min"] == pytest.approx(90.0)

    def test_map_many_writes_shards_and_rollup(self, tmp_path):
        tasks = [
            BatchTask(
                label=f"rand-{seed}",
                circuit=random_circuit(4, 6, seed=seed),
                mapper=OptimalMapper(lnn(4), uniform_latency(1, 3)),
            )
            for seed in range(8)
        ]
        spec = TelemetrySpec(directory=str(tmp_path), resource_interval=0.01)
        records = map_many(tasks, max_workers=2, telemetry_spec=spec)
        assert all(r.ok for r in records)
        assert all(r.peak_rss_bytes for r in records)
        shards = [f for f in os.listdir(str(tmp_path))
                  if f.startswith("worker-")]
        assert shards
        rollup_path = tmp_path / FLEET_ROLLUP_NAME
        assert rollup_path.exists()
        rollup = fleet_rollup(str(tmp_path))
        assert rollup["fleet"]["tasks"] == 8
        assert rollup["fleet"]["ok"] == 8
        assert sum(w["tasks"] for w in rollup["workers"]) == 8
        total_nodes = sum(
            int(r.stats.get("nodes_expanded", 0)) for r in records
        )
        assert rollup["fleet"]["nodes_expanded"] == total_nodes

    def test_mode2_fanout_writes_root_records(self, tmp_path):
        mapper = OptimalMapper(
            lnn(4), uniform_latency(1, 3), search_initial_mapping=True
        )
        mapper.telemetry_spec = TelemetrySpec(
            directory=str(tmp_path), resource_interval=0.01
        )
        result = map_mode2_fanout(mapper, qft_skeleton(4), max_workers=1)
        assert result.optimal
        shard = next(
            f for f in os.listdir(str(tmp_path)) if f.startswith("worker-")
        )
        records = read_jsonl(str(tmp_path / shard))
        roots = [r for r in records if r.get("type") == "worker_task"]
        assert roots
        assert all(r["label"].startswith("root-") for r in roots)
        assert (tmp_path / FLEET_ROLLUP_NAME).exists()

    def test_prometheus_exposition_shape(self, tmp_path):
        import re

        d = str(tmp_path)
        _write_shard(d, 7, [(1.0, 50, 1024, True)])
        text = fleet_to_prometheus(fleet_rollup(d))
        line_re = re.compile(
            r"^(# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge)"
            r'|[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+='
            r'"[^"]*")*\})? -?[0-9.e+-]+)$'
        )
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            assert line_re.match(line), line
        assert any('worker="7"' in line for line in lines)
        table = render_fleet_table(fleet_rollup(d))
        assert "fleet" in table and "nodes/s" in table


class TestObsReportCli:
    def test_fleet_table_and_prom(self, tmp_path, capsys):
        d = str(tmp_path)
        _write_shard(d, 9, [(1.0, 40, 2048, True)])
        assert cli_main(["obs-report", d]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "worker" in out
        prom_out = tmp_path / "fleet.prom"
        assert cli_main(
            ["obs-report", d, "--format", "prom", "--out", str(prom_out)]
        ) == 0
        assert "repro_fleet_tasks 1" in prom_out.read_text()

    def test_run_summary_from_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        telemetry = Telemetry(
            sink=JsonlSink(path), sample_resources=True,
            resource_interval=0.01, hot_path=False,
        )
        _spin(0.03)
        telemetry.finish()
        assert cli_main(["obs-report", path]) == 0
        out = capsys.readouterr().out
        assert "records:" in out and "resources:" in out
        summary = summarize_run(read_jsonl(path))
        prom = run_to_prometheus(summary)
        assert "repro_resource_peak_rss_bytes" in prom

    def test_missing_shards_error(self, tmp_path, capsys):
        assert cli_main(["obs-report", str(tmp_path)]) == 1
        assert "no worker-" in capsys.readouterr().err


class TestOverheadGate:
    def test_flight_recorder_within_five_percent(self):
        """Sampler + profiler attached (``hot_path=False``) must keep the
        qft5/LNN exact solve within 5% of its bare nodes/sec."""
        circuit = qft_skeleton(5)
        coupling = lnn(5)
        latency = uniform_latency(1, 3)

        def solve(**telemetry_kwargs):
            telemetry = None
            if telemetry_kwargs:
                telemetry = Telemetry(hot_path=False, **telemetry_kwargs)
            mapper = OptimalMapper(coupling, latency, telemetry=telemetry)
            result = mapper.map(circuit)
            if telemetry is not None:
                telemetry.finish()
            stats = result.stats
            return float(stats["nodes_expanded"]) / float(stats["seconds"])

        solve()  # warm caches (imports, kernel backend, memo tables)
        # Best-of-N damps scheduler noise; retry the whole comparison a
        # few times before declaring a regression, because a 5% bar on a
        # sub-100ms workload is within CI jitter for a single pairing.
        for attempt in range(4):
            bare = max(solve() for _ in range(5))
            recorded = max(
                solve(sample_resources=True, profile=True)
                for _ in range(5)
            )
            if recorded >= bare * 0.95:
                break
        assert recorded >= bare * 0.95, (
            f"flight recorder overhead too high: bare {bare:.0f} nodes/s "
            f"vs recorded {recorded:.0f} nodes/s"
        )


def _emit_task(sink, worker, index, ok=True, error_type=None,
               warm_cache=None, nodes=100, seconds=1.0):
    record = {
        "type": "worker_task", "worker": worker, "label": f"t{index}",
        "ok": ok, "seconds": seconds, "queue_wait_s": 0.25,
        "nodes_expanded": nodes, "depth": 10,
        "peak_rss_bytes": 10_000, "ts": 1000.0 + index + 1,
    }
    if error_type is not None:
        record["error_type"] = error_type
    if warm_cache is not None:
        record["warm_cache"] = warm_cache
    sink.emit(record)


class TestFleetFailuresAndWarmCache:
    def _write_shards(self, directory):
        with JsonlSink(os.path.join(directory, "worker-1.jsonl")) as sink:
            sink.emit({"type": "worker_meta", "worker": 1, "pid": 1,
                       "started_ts": 1000.0})
            _emit_task(sink, 1, 0,
                       warm_cache={"arch_hits": 0, "arch_misses": 1,
                                   "problem_hits": 0, "problem_misses": 1,
                                   "problem_evictions": 0, "contexts": 1})
            _emit_task(sink, 1, 1, ok=False, error_type="RuntimeError",
                       warm_cache={"arch_hits": 1, "arch_misses": 1,
                                   "problem_hits": 1, "problem_misses": 1,
                                   "problem_evictions": 0, "contexts": 1})
        with JsonlSink(os.path.join(directory, "worker-2.jsonl")) as sink:
            sink.emit({"type": "worker_meta", "worker": 2, "pid": 2,
                       "started_ts": 1000.0})
            _emit_task(sink, 2, 2, ok=False,
                       error_type="SearchBudgetExceeded",
                       warm_cache={"arch_hits": 0, "arch_misses": 1,
                                   "problem_hits": 2, "problem_misses": 1,
                                   "problem_evictions": 1, "contexts": 1})
            _emit_task(sink, 2, 3, ok=False)  # no error_type recorded

    def test_rollup_aggregates_failures_and_warm_counters(self, tmp_path):
        d = str(tmp_path)
        self._write_shards(d)
        rollup = fleet_rollup(d)
        workers = {w["worker"]: w for w in rollup["workers"]}
        # Per worker: last cumulative warm snapshot wins, failures by type.
        assert workers[1]["warm_cache"]["problem_hits"] == 1
        assert workers[1]["failures"] == {"RuntimeError": 1}
        assert workers[2]["failures"] == {
            "SearchBudgetExceeded": 1, "unknown": 1,
        }
        fleet = rollup["fleet"]
        assert fleet["failed"] == 3
        assert fleet["failures"] == {
            "RuntimeError": 1, "SearchBudgetExceeded": 1, "unknown": 1,
        }
        # Summed across workers: hits 1+2=3, misses 1+1=2 → 3/5.
        assert fleet["warm_cache"]["problem_hits"] == 3
        assert fleet["warm_cache"]["problem_misses"] == 2
        assert fleet["warm_cache"]["problem_evictions"] == 1
        assert fleet["warm_cache_hit_rate"] == pytest.approx(0.6)

    def test_table_renders_failure_column_and_warm_line(self, tmp_path):
        d = str(tmp_path)
        self._write_shards(d)
        table = render_fleet_table(fleet_rollup(d))
        assert "failures" in table
        assert "1xRuntimeError" in table
        assert "1xSearchBudgetExceeded,1xunknown" in table
        assert "warm-cache: hit rate 60.0%" in table

    def test_prometheus_exports_warm_and_failure_series(self, tmp_path):
        d = str(tmp_path)
        self._write_shards(d)
        text = fleet_to_prometheus(fleet_rollup(d))
        assert "repro_fleet_warm_cache_hit_rate 0.6" in text
        assert "repro_fleet_warm_cache_problem_hits 3" in text
        assert 'repro_fleet_failures{error_type="RuntimeError"} 1' in text

    def test_fleet_without_failures_or_warm_data_stays_clean(self, tmp_path):
        d = str(tmp_path)
        with JsonlSink(os.path.join(d, "worker-1.jsonl")) as sink:
            sink.emit({"type": "worker_meta", "worker": 1, "pid": 1,
                       "started_ts": 1000.0})
            _emit_task(sink, 1, 0)
        rollup = fleet_rollup(d)
        fleet = rollup["fleet"]
        assert fleet["failures"] == {}
        assert fleet["warm_cache"] == {}
        assert fleet["warm_cache_hit_rate"] == 0.0
        table = render_fleet_table(rollup)
        assert "warm-cache:" not in table  # no lookups, no noise line
        assert "-" in table  # empty failure column placeholder
