"""Unit tests for the ASAP scheduler of routed circuits."""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit, IBM_LATENCY, uniform_latency
from repro.verify import ideal_depth, result_from_routed_ops, validate_result


class TestIdealDepth:
    def test_matches_circuit_depth(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        assert ideal_depth(circuit) == circuit.depth()
        assert ideal_depth(circuit, IBM_LATENCY) == circuit.depth(IBM_LATENCY)


class TestRoutedScheduling:
    def test_direct_execution(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        result = result_from_routed_ops(
            circuit, lnn(2), uniform_latency(), [0, 1],
            [("g", 0, (0,)), ("g", 1, (0, 1))],
        )
        validate_result(result)
        assert result.depth == 2
        assert result.num_inserted_swaps == 0

    def test_swap_remaps_subsequent_gates(self):
        # cx(q0,q2) on lnn-3 after swapping q2 toward q0.
        circuit = Circuit(3).cx(0, 2)
        result = result_from_routed_ops(
            circuit, lnn(3), uniform_latency(1, 3), [0, 1, 2],
            [("s", 1, 2), ("g", 0, (0, 1))],
        )
        validate_result(result)
        assert result.depth == 4  # 3-cycle swap + 1-cycle gate
        assert result.num_inserted_swaps == 1
        assert result.final_mapping() == (0, 2, 1)

    def test_asap_overlaps_disjoint_ops(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        result = result_from_routed_ops(
            circuit, lnn(4), uniform_latency(), [0, 1, 2, 3],
            [("g", 0, (0, 1)), ("g", 1, (2, 3))],
        )
        assert result.depth == 1
        starts = {op.start for op in result.ops}
        assert starts == {0}

    def test_swap_logical_operands_recorded(self):
        circuit = Circuit(2).cx(0, 1)
        result = result_from_routed_ops(
            circuit, lnn(3), uniform_latency(1, 3), [0, 2],
            [("s", 1, 2), ("g", 0, (0, 1))],
        )
        swap_op = [op for op in result.ops if op.is_inserted_swap][0]
        # physical 1 was empty (-1), physical 2 held q1.
        assert set(swap_op.logical_qubits) == {-1, 1}
        validate_result(result)

    def test_stats_attached(self):
        circuit = Circuit(2).cx(0, 1)
        result = result_from_routed_ops(
            circuit, lnn(2), uniform_latency(), [0, 1],
            [("g", 0, (0, 1))], stats={"mapper": "test"},
        )
        assert result.stats["mapper"] == "test"

    def test_unknown_kind_raises(self):
        circuit = Circuit(2).cx(0, 1)
        with pytest.raises(ValueError):
            result_from_routed_ops(
                circuit, lnn(2), uniform_latency(), [0, 1], [("x", 0, (0,))]
            )
