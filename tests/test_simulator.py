"""Tests for the state-vector simulator and semantic equivalence oracle."""

import math

import numpy as np
import pytest

from repro.arch import grid, ibm_qx2, lnn
from repro.baselines import SabreMapper, TrivialMapper, ZulehnerMapper
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import ghz_circuit, random_circuit
from repro.core import HeuristicMapper, OptimalMapper
from repro.verify.simulator import (
    apply_gate,
    assert_semantically_equivalent,
    permute_statevector,
    simulate,
)
from repro.circuit.gate import Gate, single, swap, two


class TestGateMatrices:
    def test_h_creates_superposition(self):
        state = simulate(Circuit(1).h(0))
        assert np.allclose(state, [1 / math.sqrt(2)] * 2)

    def test_x_flips(self):
        state = simulate(Circuit(1).x(0))
        assert np.allclose(state, [0, 1])

    def test_bell_state(self):
        state = simulate(Circuit(2).h(0).cx(0, 1))
        assert np.allclose(
            state, [1 / math.sqrt(2), 0, 0, 1 / math.sqrt(2)]
        )

    def test_cx_direction_matters(self):
        # |01>: qubit 0 = 1.  cx(0,1) should flip qubit 1 -> |11>.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        out = apply_gate(state, two("cx", 0, 1), 2)
        assert np.allclose(out, [0, 0, 0, 1])
        # cx(1,0) leaves |01> alone (control qubit 1 is 0).
        out = apply_gate(state, two("cx", 1, 0), 2)
        assert np.allclose(out, [0, 1, 0, 0])

    def test_swap_exchanges_amplitudes(self):
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0  # |01>
        out = apply_gate(state, swap(0, 1), 2)
        assert np.allclose(out, [0, 0, 1, 0])  # |10>

    def test_rz_phases(self):
        state = simulate(Circuit(1).h(0).rz(0, math.pi))
        expected = np.array([np.exp(-1j * math.pi / 2), np.exp(1j * math.pi / 2)])
        expected /= math.sqrt(2)
        assert np.allclose(state, expected)

    def test_unknown_gate_raises(self):
        with pytest.raises(NotImplementedError):
            simulate(Circuit(1).add("mystery", 0))

    def test_unitarity_preserved(self):
        circuit = random_circuit(4, 30, two_qubit_fraction=0.5, seed=5)
        state = simulate(circuit)
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestPermutation:
    def test_identity_embedding(self):
        state = simulate(Circuit(2).h(0).cx(0, 1))
        embedded = permute_statevector(state, {0: 0, 1: 1}, 2)
        assert np.allclose(embedded, state)

    def test_relabeling_matches_relabeled_circuit(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        relabeled = circuit.relabeled([2, 0, 1])
        direct = simulate(relabeled)
        via_permutation = permute_statevector(
            simulate(circuit), {0: 2, 1: 0, 2: 1}, 3
        )
        assert np.allclose(direct, via_permutation)

    def test_embedding_into_larger_space(self):
        state = simulate(Circuit(1).x(0))
        embedded = permute_statevector(state, {0: 2}, 3)
        assert embedded[4] == 1.0  # |100> with qubit 2 set


class TestSemanticEquivalence:
    def test_optimal_mapper_output_equivalent(self):
        circuit = random_circuit(4, 12, two_qubit_fraction=0.7, seed=8)
        result = OptimalMapper(lnn(4), uniform_latency(1, 3)).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        assert_semantically_equivalent(result)

    def test_initial_mapping_search_output_equivalent(self):
        circuit = random_circuit(4, 10, two_qubit_fraction=0.8, seed=2)
        result = OptimalMapper(
            ibm_qx2(), uniform_latency(1, 3), search_initial_mapping=True
        ).map(circuit)
        assert_semantically_equivalent(result)

    @pytest.mark.parametrize("seed", range(4))
    def test_all_mappers_semantically_equivalent(self, seed):
        circuit = random_circuit(5, 25, two_qubit_fraction=0.6, seed=seed)
        arch = grid(2, 3)
        latency = uniform_latency(1, 3)
        for mapper in (
            HeuristicMapper(arch, latency),
            SabreMapper(arch, latency, seed=seed),
            ZulehnerMapper(arch, latency),
            TrivialMapper(arch, latency),
        ):
            assert_semantically_equivalent(mapper.map(circuit))

    def test_detects_corrupted_schedule(self):
        circuit = ghz_circuit(3)
        result = OptimalMapper(lnn(3)).map(circuit, initial_mapping=[0, 1, 2])
        # Corrupt: flip a CNOT's physical direction.
        from repro.core.result import ScheduledOp

        for i, op in enumerate(result.ops):
            if op.name == "cx":
                result.ops[i] = ScheduledOp(
                    op.gate_index, op.name, op.logical_qubits,
                    op.physical_qubits[::-1], op.start, op.duration,
                )
                break
        with pytest.raises(AssertionError, match="not semantically"):
            assert_semantically_equivalent(result)


class TestOriginalSwapGates:
    """SWAP gates *in the input circuit* are computational, not remapping."""

    def test_circuit_with_explicit_swap_maps_correctly(self):
        circuit = Circuit(3).h(0).swap(0, 2).cx(0, 1)
        result = OptimalMapper(lnn(3), uniform_latency(1, 3)).map(
            circuit, initial_mapping=[0, 1, 2]
        )
        assert_semantically_equivalent(result)

    def test_final_mapping_ignores_original_swaps(self):
        circuit = Circuit(2).swap(0, 1)
        result = OptimalMapper(lnn(2)).map(circuit, initial_mapping=[0, 1])
        # The original swap exchanged the *states*; the logical qubits'
        # homes never moved.
        assert result.final_mapping() == (0, 1)

    def test_heuristic_mapper_with_original_swaps(self):
        circuit = Circuit(4).swap(0, 3).cx(0, 1).swap(1, 2).cx(2, 3)
        result = HeuristicMapper(lnn(4), uniform_latency(1, 3)).map(circuit)
        assert_semantically_equivalent(result)
