"""Cross-mapper tests for the normalized ``MappingResult.stats`` schema.

Every mapper — TOQM optimal, TOQM heuristic, SABRE, Zulehner, OLSQ-style
and trivial — must emit the same required key set so
``analysis.compare`` can tabulate them uniformly, and budget-killed runs
must carry the same schema in ``SearchBudgetExceeded.partial_stats``.
"""

import pytest

from repro.analysis.compare import compare_mappers
from repro.arch import grid, lnn
from repro.baselines import (
    OlsqStyleMapper,
    SabreMapper,
    TrivialMapper,
    ZulehnerMapper,
)
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton, random_circuit
from repro.core import HeuristicMapper, OptimalMapper, SearchBudgetExceeded
from repro.obs import (
    MAPPER_NAMES,
    REQUIRED_STAT_KEYS,
    MemorySink,
    Telemetry,
    base_stats,
    missing_stat_keys,
    stats_row,
    validate_stats,
)
from repro.obs.schema import STAT_BUDGET_REASON


def small_circuit():
    return qft_skeleton(4)


LATENCY = uniform_latency(1, 3)


def mapper_matrix():
    coupling = lnn(4)
    return [
        ("toqm-optimal", OptimalMapper(coupling, LATENCY)),
        ("toqm-heuristic", HeuristicMapper(coupling, LATENCY)),
        ("sabre", SabreMapper(coupling, LATENCY, seed=0)),
        ("zulehner", ZulehnerMapper(coupling, LATENCY)),
        ("olsq-style", OlsqStyleMapper(coupling, LATENCY)),
        ("trivial", TrivialMapper(coupling, LATENCY)),
    ]


class TestSchemaHelpers:
    def test_base_stats_conforms(self):
        stats = base_stats("toqm-optimal", nodes_expanded=5, killed=1)
        assert missing_stat_keys(stats) == []
        validate_stats(stats)
        assert stats["killed"] == 1

    def test_validate_rejects_partial_dict(self):
        with pytest.raises(ValueError, match="nodes_generated"):
            validate_stats({"mapper": "sabre", "nodes_expanded": 1})

    def test_stats_row_projects_and_fills_none(self):
        row = stats_row({"mapper": "sabre", "extra": 9, "seconds": 0.1})
        assert set(row) == set(REQUIRED_STAT_KEYS)
        assert row["nodes_expanded"] is None
        assert "extra" not in row


class TestEveryMapperEmitsTheSchema:
    @pytest.mark.parametrize(
        "name,mapper", mapper_matrix(), ids=[n for n, _ in mapper_matrix()]
    )
    def test_required_keys_and_canonical_name(self, name, mapper):
        result = mapper.map(small_circuit())
        assert missing_stat_keys(result.stats) == []
        assert result.stats["mapper"] == name
        assert result.stats["mapper"] in MAPPER_NAMES
        assert result.stats["seconds"] >= 0
        assert result.stats["nodes_expanded"] >= 0

    @pytest.mark.parametrize("mapper_cls", [OptimalMapper, HeuristicMapper])
    def test_stats_match_metrics_counters(self, mapper_cls):
        telemetry = Telemetry()
        mapper = mapper_cls(lnn(4), LATENCY, telemetry=telemetry)
        result = mapper.map(small_circuit())
        snap = telemetry.metrics.snapshot()
        assert snap["search.nodes_expanded"] == result.stats["nodes_expanded"]
        assert snap["search.nodes_generated"] == result.stats["nodes_generated"]


class TestBudgetExceededCarriesPartialStats:
    def test_node_budget_partial_stats(self):
        mapper = OptimalMapper(lnn(5), LATENCY, max_nodes=3)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            mapper.map(qft_skeleton(5))
        stats = excinfo.value.partial_stats
        assert stats is not None
        assert missing_stat_keys(stats) == []
        assert stats["mapper"] == "toqm-optimal"
        assert stats["nodes_expanded"] == 3
        assert stats[STAT_BUDGET_REASON] == "max_nodes"
        assert stats["seconds"] > 0

    def test_partial_stats_with_telemetry_snapshot(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        mapper = OptimalMapper(lnn(5), LATENCY, max_nodes=5,
                               telemetry=telemetry)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            mapper.map(qft_skeleton(5))
        # the registry was snapshotted at the kill point
        labels = [r["label"] for r in sink.of_type("metrics")]
        assert "budget_exceeded" in labels
        snapshot = sink.of_type("metrics")[0]["metrics"]
        assert snapshot["search.nodes_expanded"] == \
            excinfo.value.partial_stats["nodes_expanded"]

    def test_olsq_relabels_partial_stats(self):
        mapper = OlsqStyleMapper(grid(2, 3), LATENCY, max_nodes=3)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            mapper.map(random_circuit(5, 25, seed=1))
        assert excinfo.value.partial_stats["mapper"] == "olsq-style"


class TestCompareTabulation:
    def test_stats_table_covers_all_mappers(self):
        coupling = lnn(4)
        report = compare_mappers(
            small_circuit(),
            coupling,
            [
                ("optimal", OptimalMapper(coupling, LATENCY)),
                ("sabre", SabreMapper(coupling, LATENCY, seed=0)),
                ("trivial", TrivialMapper(coupling, LATENCY)),
            ],
            latency=LATENCY,
        )
        rows = report.normalized_stats()
        assert set(rows) == {"optimal", "sabre", "trivial"}
        for row in rows.values():
            assert set(row) == set(REQUIRED_STAT_KEYS)
            assert row["nodes_expanded"] is not None
        table = report.stats_table()
        assert "nodes_expanded" in table
        assert "sabre" in table and "trivial" in table
