"""Expansion-level search tracing: recorder semantics + reconciliation.

Two layers of guarantee:

* **Recorder unit behavior** — full/ring/sample capture modes, pinned
  events, exact counts independent of eviction/sampling, spec
  round-trip, sink flushing on close.
* **End-to-end exactness** — a full-mode trace of a real mode-2 search
  (in-process *and* through the parallel fan-out, workers 1 and 2)
  reproduces the run's reported counters (``symmetry_pruned``,
  ``pruned_by_bound``, ...) exactly via ``repro diagnose``'s
  reconciliation, and the fan-out coordinator emits the final
  ``phase="done"`` progress event with aggregated stats.
"""

import pytest

from repro.analysis.diagnose import RECONCILED_STATS, diagnose
from repro.arch import grid, lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper, SearchBudgetExceeded
from repro.obs import MemorySink, Telemetry, TraceRecorder, TraceSpec
from repro.obs.trace import (
    EV_EXPAND,
    EV_INCUMBENT,
    EV_PRUNE,
    EV_SUMMARY,
    MODE_RING,
    MODE_SAMPLE,
    PRUNE_EQUIVALENCE,
    PRUNE_INCUMBENT_BOUND,
)


class _Node:
    """Minimal stand-in satisfying the recorder's node protocol."""

    def __init__(self, parent=None, in_prefix=False, actions=(("g", 0),),
                 time=0, h=0, f=0):
        self.parent = parent
        self.in_prefix = in_prefix
        self.actions = tuple(actions)
        self.time = time
        self.h = h
        self.f = f
        self._tid = -1


class TestTraceRecorder:
    def test_full_mode_records_everything(self):
        recorder = TraceRecorder()
        root = _Node()
        child = _Node(parent=root, time=1, h=2, f=3)
        recorder.expand(root, heap_size=1)
        recorder.expand(child, heap_size=4)
        recorder.prune(PRUNE_INCUMBENT_BOUND, node=child)
        recorder.prune(PRUNE_EQUIVALENCE, count=3)
        recorder.incumbent(9, "seed")
        recorder.summary({"nodes_expanded": 2})
        records = recorder.drain()
        assert [r["ev"] for r in records] == [
            EV_EXPAND, EV_EXPAND, EV_PRUNE, EV_PRUNE, EV_INCUMBENT,
            EV_SUMMARY,
        ]
        assert recorder.complete
        assert recorder.expansions == 2
        assert recorder.counts == {
            PRUNE_INCUMBENT_BOUND: 1, PRUNE_EQUIVALENCE: 3,
        }
        expand = records[1]
        assert expand["node"] == 1 and expand["parent"] == 0
        assert expand["cycle"] == 1 and expand["h"] == 2 and expand["f"] == 3
        # f is carried on bound prunes only; count omitted when 1.
        assert records[2]["f"] == 3 and "count" not in records[2]
        assert records[3]["count"] == 3 and "node" not in records[3]
        summary = records[-1]
        assert summary["complete"] and summary["expansions"] == 2
        assert summary["counts"] == {
            PRUNE_EQUIVALENCE: 3, PRUNE_INCUMBENT_BOUND: 1,
        }

    def test_node_ids_stable_across_calls(self):
        recorder = TraceRecorder()
        node = _Node()
        assert recorder.node_id(node) == 0
        assert recorder.node_id(node) == 0
        assert recorder.node_id(_Node()) == 1

    def test_ring_mode_evicts_unpinned_only(self):
        recorder = TraceRecorder(mode=MODE_RING, ring_size=2)
        for index in range(5):
            recorder.expand(_Node(time=index), heap_size=index)
        recorder.incumbent(7, "terminal")
        recorder.summary({})
        assert recorder.evicted == 3
        assert not recorder.complete
        assert recorder.expansions == 5  # exact despite eviction
        records = recorder.drain()
        assert [r["ev"] for r in records] == [
            EV_EXPAND, EV_EXPAND, EV_INCUMBENT, EV_SUMMARY,
        ]
        assert [r["idx"] for r in records[:2]] == [3, 4]  # newest survive
        assert records[-1]["complete"] is False

    def test_sample_mode_strides_but_counts_exactly(self):
        recorder = TraceRecorder(mode=MODE_SAMPLE, sample_every=3)
        for index in range(9):
            recorder.expand(_Node(time=index), heap_size=0)
        recorder.prune(PRUNE_EQUIVALENCE, count=5)
        assert recorder.expansions == 9
        assert recorder.counts[PRUNE_EQUIVALENCE] == 5  # exact
        kept = recorder.drain()
        assert len(kept) == 4  # samplable events 0, 3, 6, 9
        assert recorder.sampled_out == 6
        assert not recorder.complete

    def test_spec_round_trip(self):
        recorder = TraceRecorder(mode=MODE_RING, ring_size=17,
                                 sample_every=5)
        spec = recorder.spec()
        assert spec == TraceSpec(mode=MODE_RING, ring_size=17,
                                 sample_every=5)
        rebuilt = TraceRecorder.from_spec(spec)
        assert rebuilt.mode == MODE_RING
        assert rebuilt.ring_size == 17
        assert rebuilt.sample_every == 5
        assert rebuilt.records is not None  # workers keep records

    def test_emit_raw_bypasses_counters(self):
        recorder = TraceRecorder()
        recorder.emit_raw({"type": "trace", "ev": EV_PRUNE,
                           "reason": PRUNE_EQUIVALENCE, "root": 3})
        recorder.emit_raw({"type": "trace", "ev": EV_SUMMARY, "root": 3})
        assert recorder.counts == {}  # worker counts arrive via stats
        assert recorder.expansions == 0
        assert len(recorder.drain()) == 2

    def test_emit_raw_pins_summary_in_ring_mode(self):
        recorder = TraceRecorder(mode=MODE_RING, ring_size=1)
        recorder.emit_raw({"type": "trace", "ev": EV_SUMMARY, "root": 0})
        for index in range(3):
            recorder.expand(_Node(time=index), heap_size=0)
        records = recorder.drain()
        assert [r["ev"] for r in records] == [EV_EXPAND, EV_SUMMARY]

    def test_close_flushes_ring_to_sink_once(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink, mode=MODE_RING, ring_size=8)
        recorder.expand(_Node(), heap_size=0)
        recorder.summary({})
        assert sink.records == []  # ring buffers until close
        recorder.close()
        assert [r["ev"] for r in sink.records] == [EV_EXPAND, EV_SUMMARY]
        recorder.close()  # idempotent
        assert len(sink.records) == 2

    def test_full_mode_streams_to_sink_immediately(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink)
        recorder.expand(_Node(), heap_size=0)
        assert len(sink.records) == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown trace mode"):
            TraceRecorder(mode="everything")


def _traced_mode2(workers=None, max_nodes=None, seed_incumbent=True):
    """Map QFT-4 on LNN-4 in mode 2 with a full in-memory trace."""
    recorder = TraceRecorder()
    telemetry = Telemetry(search_trace=recorder)
    mapper = OptimalMapper(
        lnn(4), uniform_latency(1, 3), search_initial_mapping=True,
        mode2_workers=workers, max_nodes=max_nodes,
        seed_incumbent=seed_incumbent, telemetry=telemetry,
    )
    return mapper, telemetry, recorder


class TestTraceReconciliation:
    def test_full_trace_reproduces_mode2_counters(self):
        mapper, telemetry, recorder = _traced_mode2()
        result = mapper.map(qft_skeleton(4))
        telemetry.finish()
        report = diagnose(recorder.drain())
        assert report["complete"]
        assert report["consistent"], report["mismatches"]
        for key in RECONCILED_STATS:
            if key in result.stats:
                assert report["recorded_counters"].get(key, 0) == \
                    result.stats[key]
        audit = report["heuristic_audit"]
        assert audit is not None
        assert audit["depth"] == result.depth
        assert audit["admissible_on_path"]
        assert audit["path_complete"]
        # slack >= 0 along the whole optimal path: empirical
        # admissibility of h
        assert all(step["slack"] >= 0 for step in audit["path"])

    def test_untraced_run_matches_traced_depth_and_counters(self):
        mapper, telemetry, recorder = _traced_mode2()
        traced = mapper.map(qft_skeleton(4))
        telemetry.finish()
        plain = OptimalMapper(
            lnn(4), uniform_latency(1, 3), search_initial_mapping=True,
        ).map(qft_skeleton(4))
        assert traced.depth == plain.depth
        for key in RECONCILED_STATS:
            assert traced.stats.get(key) == plain.stats.get(key)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fanout_trace_reproduces_counters(self, workers):
        mapper, telemetry, recorder = _traced_mode2(workers=workers)
        result = mapper.map(qft_skeleton(4))
        telemetry.finish()
        records = recorder.drain()
        report = diagnose(records)
        assert report["complete"]
        assert report["consistent"], report["mismatches"]
        assert report["recorded_counters"]["nodes_expanded"] == \
            result.stats["nodes_expanded"]
        # Worker chunks arrive root-tagged; the aggregate summary wins.
        assert any(r.get("root", -1) >= 0 for r in records)
        summaries = [r for r in records if r.get("ev") == EV_SUMMARY]
        assert summaries[-1]["scope"] == "aggregate"
        assert summaries[-1]["stats"]["mode2_workers"] == workers

    def test_fanout_emits_done_event_with_winning_root(self):
        mapper, telemetry, recorder = _traced_mode2(workers=1)
        events = []
        telemetry.progress.subscribe(events.append)
        result = mapper.map(qft_skeleton(4))
        telemetry.finish()
        done = [e for e in events if e.phase == "done"]
        assert len(done) == 1
        event = done[0]
        assert event.nodes_expanded == result.stats["nodes_expanded"]
        assert event.best_f == result.depth
        assert event.extra["mode2_roots"] == result.stats["mode2_roots"]
        assert event.extra["mode2_roots_searched"] == \
            result.stats["mode2_roots_searched"]
        assert event.extra["winning_root"] >= -1

    def test_budget_trip_still_summarizes(self):
        mapper, telemetry, recorder = _traced_mode2(
            workers=1, max_nodes=50, seed_incumbent=False,
        )
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            mapper.map(qft_skeleton(4))
        telemetry.finish()
        records = recorder.drain()
        summaries = [r for r in records if r.get("ev") == EV_SUMMARY]
        assert summaries, "budget path must still emit summaries"
        report = diagnose(records)
        assert report["stats"]["budget_reason"] == "max_nodes"
        assert report["recorded_counters"]["nodes_expanded"] == \
            excinfo.value.partial_stats["nodes_expanded"]

    def test_mode1_trace_reconciles_too(self):
        recorder = TraceRecorder()
        telemetry = Telemetry(search_trace=recorder)
        circuit = Circuit(4).cx(0, 1).cx(2, 3).cx(0, 3).cx(1, 2)
        result = OptimalMapper(
            grid(2, 2), uniform_latency(1, 3), telemetry=telemetry,
        ).map(circuit, initial_mapping=[0, 1, 2, 3])
        telemetry.finish()
        report = diagnose(recorder.drain())
        assert report["complete"] and report["consistent"]
        assert report["recorded_counters"]["nodes_expanded"] == \
            result.stats["nodes_expanded"]
