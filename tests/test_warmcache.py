"""Tests for the per-worker architecture warm cache (``repro.core.warmcache``)."""

import pytest

from repro.arch import grid, lnn
from repro.circuit import IBM_LATENCY, uniform_latency
from repro.circuit.generators import qft_skeleton, random_circuit
from repro.core import HeuristicMapper, OptimalMapper
from repro.core.warmcache import (
    ArchContext,
    WarmCachePool,
    arch_fingerprint,
    circuit_fingerprint,
    coupling_fingerprint,
    latency_fingerprint,
)


class TestFingerprints:
    def test_structural_equality_across_instances(self):
        assert coupling_fingerprint(lnn(4)) == coupling_fingerprint(lnn(4))
        assert circuit_fingerprint(qft_skeleton(5)) == circuit_fingerprint(
            qft_skeleton(5)
        )

    def test_distinct_structures_do_not_collide(self):
        assert coupling_fingerprint(lnn(4)) != coupling_fingerprint(lnn(5))
        assert coupling_fingerprint(lnn(6)) != coupling_fingerprint(
            grid(2, 3)
        )
        assert circuit_fingerprint(qft_skeleton(4)) != circuit_fingerprint(
            qft_skeleton(5)
        )
        assert circuit_fingerprint(
            random_circuit(4, 6, seed=0)
        ) != circuit_fingerprint(random_circuit(4, 6, seed=1))

    def test_latency_model_distinguishes_arch_fingerprint(self):
        device = lnn(4)
        assert arch_fingerprint(device, uniform_latency(1, 3)) != (
            arch_fingerprint(device, IBM_LATENCY)
        )
        assert latency_fingerprint(uniform_latency(1, 3)) != (
            latency_fingerprint(IBM_LATENCY)
        )

    def test_none_latency_resolves_like_mapping_problem(self):
        # None must hash identically to the explicit default it resolves
        # to — otherwise one device would get two contexts.
        device = lnn(4)
        assert arch_fingerprint(device, None) == arch_fingerprint(
            device, uniform_latency()
        )


class TestArchContextLru:
    def test_problem_hit_miss_and_eviction_counters(self):
        context = ArchContext(lnn(4), uniform_latency(1, 3), max_problems=2)
        a, b, c = (random_circuit(4, 6, seed=s) for s in range(3))
        first = context.problem(a)
        assert context.problem(a) is first
        assert (context.problem_hits, context.problem_misses) == (1, 1)
        context.problem(b)
        context.problem(c)  # evicts a (LRU)
        assert context.problem_evictions == 1
        assert context.problem(a) is not first  # rebuilt after eviction
        assert context.problem_misses == 4  # a, b, c, and a again

    def test_problems_share_split_lut(self):
        context = ArchContext(lnn(4), uniform_latency(1, 3))
        p1 = context.problem(random_circuit(4, 6, seed=0))
        p2 = context.problem(random_circuit(4, 6, seed=1))
        assert p1.split_lut is p2.split_lut is context.split_lut

    def test_memo_persists_per_config_key(self):
        context = ArchContext(lnn(4), uniform_latency(1, 3))
        problem = context.problem(random_circuit(4, 6, seed=0))
        memo = context.memo(problem, ("heuristic", None))
        assert context.memo(problem, ("heuristic", None)) is memo
        assert context.memo(problem, ("optimal", True)) is not memo


class TestWarmCachePool:
    def test_structurally_equal_devices_share_a_context(self):
        pool = WarmCachePool()
        first = pool.context(lnn(4), uniform_latency(1, 3))
        again = pool.context(lnn(4), uniform_latency(1, 3))  # new instances
        assert again is first
        assert (pool.arch_hits, pool.arch_misses) == (1, 1)

    def test_distinct_devices_get_distinct_contexts(self):
        pool = WarmCachePool()
        a = pool.context(lnn(4), uniform_latency(1, 3))
        b = pool.context(lnn(4), IBM_LATENCY)
        c = pool.context(grid(2, 3), uniform_latency(1, 3))
        assert len({id(a), id(b), id(c)}) == 3
        assert pool.counters()["contexts"] == 3

    def test_counters_aggregate_across_contexts(self):
        pool = WarmCachePool()
        circuit = random_circuit(4, 6, seed=0)
        pool.context(lnn(4)).problem(circuit)
        pool.context(lnn(4)).problem(circuit)
        totals = pool.counters()
        assert totals["problem_hits"] == 1
        assert totals["problem_misses"] == 1
        pool.reset()
        assert pool.counters()["contexts"] == 0


class TestWarmBitIdentity:
    """Warm-cache runs must be bit-identical to cold runs."""

    @pytest.mark.parametrize("mapper_cls", [HeuristicMapper, OptimalMapper])
    def test_repeat_maps_identical_cold_vs_warm(self, mapper_cls):
        device, latency = lnn(5), uniform_latency(1, 3)
        circuit = qft_skeleton(5)

        cold = mapper_cls(device, latency).map(circuit)
        warm_mapper = mapper_cls(device, latency)
        warm_mapper.arch_context = WarmCachePool().context(device, latency)
        runs = [warm_mapper.map(circuit) for _ in range(3)]

        for result in runs:
            assert result.depth == cold.depth
            assert result.ops == cold.ops
            assert result.initial_mapping == cold.initial_mapping
            assert (
                result.stats["nodes_expanded"]
                == cold.stats["nodes_expanded"]
            )

    def test_warm_repeat_hits_the_memo(self):
        device, latency = lnn(5), uniform_latency(1, 3)
        circuit = qft_skeleton(5)
        mapper = HeuristicMapper(device, latency)
        mapper.arch_context = WarmCachePool().context(device, latency)
        first = mapper.map(circuit)
        second = mapper.map(circuit)
        # The second run re-sees every state the first evaluated.
        assert second.stats["memo_hits"] > first.stats["memo_hits"]
        assert mapper.arch_context.problem_hits >= 1
